package quantile

// This file is the benchmark harness required by DESIGN.md: one testing.B
// benchmark per paper table and figure (reporting the regenerated values as
// custom metrics) plus ingest/query micro-benchmarks for every algorithm.
// The experiment implementations live in internal/experiments and are
// shared with cmd/qbench, so both report the same numbers.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/stream"
)

// BenchmarkTable1 regenerates paper Table 1 (memory of the unknown-N vs
// known-N algorithms over the (ε, δ) grid) and reports the worst
// unknown/known ratio — the paper's "no more than twice" claim.
func BenchmarkTable1(b *testing.B) {
	var r experiments.Table1Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MaxRatio(), "worst-unknown/known-ratio")
	mid := r.Rows[2] // eps = 0.01
	b.ReportMetric(float64(mid.Unknown[2].Memory), "mem-elems(eps=.01,delta=1e-4)")
}

// BenchmarkTable2 regenerates paper Table 2 (multiple quantiles) and
// reports the p=1→1000 memory growth factor at ε = 0.01.
func BenchmarkTable2(b *testing.B) {
	var r experiments.Table2Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Rows[2].GrowthFactor(), "growth-p1-to-p1000(eps=.01)")
	b.ReportMetric(float64(r.Rows[2].Precompute.Memory), "precompute-mem-elems(eps=.01)")
}

// BenchmarkFigure4 regenerates paper Figure 4 (memory vs log10 N) and
// reports the known-N plateau and the constant unknown-N level.
func BenchmarkFigure4(b *testing.B) {
	var r experiments.Figure4Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Plateau), "knownN-plateau-elems")
	b.ReportMetric(float64(r.Points[0].Unknown), "unknownN-const-elems")
	b.ReportMetric(float64(r.Points[0].KnownN), "knownN-at-1e3-elems")
}

// BenchmarkFigure5 regenerates paper Figure 5 (buffer allocation schedule
// under user memory caps) and reports the plan's peak and early memory.
func BenchmarkFigure5(b *testing.B) {
	var r experiments.Figure5Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Plan.MaxMemory()), "schedule-peak-elems")
	b.ReportMetric(float64(r.Points[0].Scheduled), "schedule-at-1e3-elems")
}

// BenchmarkTreesFigure23 regenerates the Figure 2/3 structural trace and
// reports the leaf counts at which the tree height grows (pinning the
// closed forms the optimizer relies on).
func BenchmarkTreesFigure23(b *testing.B) {
	var r experiments.TreesResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Trees(5, 2, 60)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, e := range r.Events {
		if e.Height == 2 {
			b.ReportMetric(float64(e.Leaves), "leaves-at-onset(b=5,h=2)")
		}
	}
}

// BenchmarkAccuracy runs the E-ACC validation (observed error vs ε across
// distributions) and reports the failure count — expected 0 at these
// parameters.
func BenchmarkAccuracy(b *testing.B) {
	cfg := experiments.DefaultAccuracyConfig()
	cfg.N = 100_000
	cfg.Trials = 1
	var r experiments.AccuracyResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Accuracy(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	fails, total := r.TotalFailures()
	b.ReportMetric(float64(fails), "estimates-outside-eps")
	b.ReportMetric(float64(total), "estimates-checked")
}

// BenchmarkExtreme runs the E-EXT comparison (Section 7) and reports the
// memory ratio of the extreme estimator to the general algorithm at
// φ = 0.01, ε = 0.001.
func BenchmarkExtreme(b *testing.B) {
	cfg := experiments.DefaultExtremeConfig()
	cfg.N = 100_000
	cfg.Trials = 1
	var r experiments.ExtremeResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Extreme(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		if row.Phi == 0.01 && row.Eps == 0.001 {
			b.ReportMetric(float64(row.ExtremeK), "extreme-k-elems")
			b.ReportMetric(float64(row.ExtremeK)/float64(row.GeneralBK), "extreme/general-mem-ratio")
		}
	}
}

// BenchmarkParallel runs the E-PAR merge validation and reports the worst
// merged-estimate error fraction at 8 workers.
func BenchmarkParallel(b *testing.B) {
	cfg := experiments.DefaultParallelConfig()
	cfg.PerWorker = 20_000
	cfg.WorkerCounts = []int{8}
	var r experiments.ParallelResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Parallel(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Rows[0].WorstErrFrac, "worst-err/(eps*N)@P=8")
	b.ReportMetric(float64(r.Rows[0].Failures), "outside-eps@P=8")
}

// BenchmarkReservoir runs the E-RES comparison and reports the memory
// ratio at ε = 0.001.
func BenchmarkReservoir(b *testing.B) {
	var r experiments.ReservoirResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Reservoir(1e-3)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := r.Rows[len(r.Rows)-1]
	b.ReportMetric(last.Ratio, "reservoir/unknownN-mem@eps=.001")
}

// BenchmarkAblationPolicy compares the three collapse policies under one
// budget and reports each policy's worst error fraction.
func BenchmarkAblationPolicy(b *testing.B) {
	var r experiments.PolicyAblationResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.PolicyAblation(6, 256, 100_000, 0.01)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		b.ReportMetric(row.WorstErrFrac, "err-frac/"+row.Policy)
	}
}

// BenchmarkAblationAlpha sweeps the ε split and reports the solver's
// balance point.
func BenchmarkAblationAlpha(b *testing.B) {
	var r experiments.AlphaAblationResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.AlphaAblation(0.01, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.SolverAlpha, "solver-alpha")
	b.ReportMetric(float64(r.SolverMemory), "solver-mem-elems")
}

// BenchmarkAblationOnset sweeps the sampling-onset height and reports the
// optimal h's memory.
func BenchmarkAblationOnset(b *testing.B) {
	var r experiments.OnsetAblationResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.OnsetAblation(0.01, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
	}
	best := r.Rows[0]
	for _, row := range r.Rows {
		if row.Memory < best.Memory {
			best = row
		}
	}
	b.ReportMetric(float64(best.H), "best-onset-h")
	b.ReportMetric(float64(best.Memory), "best-mem-elems")
}

// BenchmarkDelta runs the E-DELTA failure-rate validation and reports the
// observed rate at the provisioned configuration (budget: δ).
func BenchmarkDelta(b *testing.B) {
	cfg := experiments.DefaultDeltaConfig()
	cfg.N = 10_000
	cfg.Trials = 30
	var r experiments.DeltaResult
	var err error
	for i := 0; i < b.N; i++ {
		r, err = experiments.Delta(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ProvisionedRate(), "observed-failure-rate")
	b.ReportMetric(cfg.Delta, "budget-delta")
}

// --- Ingest / query micro-benchmarks (E-THR) ---

func benchData(n int) []float64 {
	return stream.Collect(stream.Uniform(uint64(n), 0xbe9c4))
}

// BenchmarkThroughputUnknownN measures Sketch.Add at ε=0.01, δ=1e-3.
func BenchmarkThroughputUnknownN(b *testing.B) {
	data := benchData(1 << 20)
	s, err := New[float64](0.01, 1e-3, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(data[i&(1<<20-1)])
	}
}

// prefillToRate drives a sketch into the sampling regime until the next New
// operation would sample at least at the given rate, so the benchmark body
// measures the skip-sampling fast path rather than the rate-1 warmup.
func prefillToRate(b *testing.B, s *Sketch[float64], data []float64, rate uint64) {
	b.Helper()
	for s.Stats().SamplingRate < rate {
		s.AddAll(data)
		if s.Count() > 1<<32 {
			b.Fatalf("sketch never reached sampling rate %d", rate)
		}
	}
}

// BenchmarkAddAllBulk measures bulk ingest through AddAll with the sketch
// already in the sampling regime (rate >= 8) — the tentpole fast path. The
// ISSUE acceptance criterion is >= 2x over BenchmarkAddAllNaive here.
func BenchmarkAddAllBulk(b *testing.B) {
	data := benchData(1 << 16)
	s, err := New[float64](0.01, 1e-3, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	prefillToRate(b, s, data, 8)
	b.SetBytes(8)
	b.ResetTimer()
	for n := b.N; n > 0; {
		c := len(data)
		if c > n {
			c = n
		}
		s.AddAll(data[:c])
		n -= c
	}
}

// BenchmarkAddAllNaive is the per-element control for BenchmarkAddAllBulk:
// the same stream, sketch state and sampling rate, fed through Add.
func BenchmarkAddAllNaive(b *testing.B) {
	data := benchData(1 << 16)
	s, err := New[float64](0.01, 1e-3, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	prefillToRate(b, s, data, 8)
	b.SetBytes(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(data[i&(1<<16-1)])
	}
}

// BenchmarkThroughputKnownN measures the MRL98 known-N sketch's Add.
func BenchmarkThroughputKnownN(b *testing.B) {
	data := benchData(1 << 20)
	s, err := NewKnownN[float64](1<<40, 0.01, 1e-3, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(data[i&(1<<20-1)])
	}
}

// BenchmarkThroughputReservoir measures the baseline's Add.
func BenchmarkThroughputReservoir(b *testing.B) {
	data := benchData(1 << 20)
	s, err := NewReservoir[float64](0.01, 1e-3, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(data[i&(1<<20-1)])
	}
}

// BenchmarkThroughputExtreme measures the Section 7 estimator's Add.
func BenchmarkThroughputExtreme(b *testing.B) {
	data := benchData(1 << 20)
	s, err := NewExtreme[float64](0.01, 0.002, 1e-3, 1<<40, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(data[i&(1<<20-1)])
	}
}

// BenchmarkQuery measures the anytime Output operation on a loaded sketch
// at several batch sizes.
func BenchmarkQuery(b *testing.B) {
	s, err := New[float64](0.01, 1e-3, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range benchData(1 << 21) {
		s.Add(v)
	}
	for _, nq := range []int{1, 10, 100} {
		phis := make([]float64, nq)
		for i := range phis {
			phis[i] = float64(i+1) / float64(nq+1)
		}
		b.Run(fmt.Sprintf("phis=%d", nq), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Quantiles(phis); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMerge measures the Section 6 coordinator merging 8 workers.
// Merge consumes its inputs, so each iteration rebuilds the workers from
// pre-serialized checkpoints; the measured op is restore + ship + merge
// (restore is a small fraction of it).
func BenchmarkMerge(b *testing.B) {
	data := benchData(1 << 16)
	blobs := make([][]byte, 8)
	for w := range blobs {
		s, err := New[float64](0.02, 1e-3, WithSeed(uint64(w)))
		if err != nil {
			b.Fatal(err)
		}
		s.AddAll(data)
		blob, err := s.Checkpoint(Float64Codec())
		if err != nil {
			b.Fatal(err)
		}
		blobs[w] = blob
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sketches := make([]*Sketch[float64], len(blobs))
		for w, blob := range blobs {
			s, err := RestoreSketch[float64](blob, Float64Codec())
			if err != nil {
				b.Fatal(err)
			}
			sketches[w] = s
		}
		if _, err := Merge(sketches...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint measures serializing a loaded sketch.
func BenchmarkCheckpoint(b *testing.B) {
	s, err := New[float64](0.01, 1e-3, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range benchData(1 << 20) {
		s.Add(v)
	}
	b.ResetTimer()
	var blob []byte
	for i := 0; i < b.N; i++ {
		blob, err = s.Checkpoint(Float64Codec())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(blob)), "blob-bytes")
}

// BenchmarkRestore measures deserializing a checkpoint.
func BenchmarkRestore(b *testing.B) {
	s, err := New[float64](0.01, 1e-3, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range benchData(1 << 20) {
		s.Add(v)
	}
	blob, err := s.Checkpoint(Float64Codec())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RestoreSketch[float64](blob, Float64Codec()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConcurrentAdd measures the sharded sketch's parallel ingest.
func BenchmarkConcurrentAdd(b *testing.B) {
	c, err := NewConcurrent[float64](0.01, 1e-3, 8, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	data := benchData(1 << 16)
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Add(data[i&(1<<16-1)])
			i++
		}
	})
}

// BenchmarkConcurrentAddAll measures chunked bulk ingest into the sharded
// sketch at several goroutine counts; each goroutine feeds its own slice of
// the stream through AddAll.
func BenchmarkConcurrentAddAll(b *testing.B) {
	data := benchData(1 << 16)
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			c, err := NewConcurrent[float64](0.01, 1e-3, 8, WithSeed(1))
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(8)
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N / g
			for w := 0; w < g; w++ {
				n := per
				if w == 0 {
					n += b.N % g
				}
				wg.Add(1)
				go func(n int) {
					defer wg.Done()
					for n > 0 {
						chunk := len(data)
						if chunk > n {
							chunk = n
						}
						c.AddAll(data[:chunk])
						n -= chunk
					}
				}(n)
			}
			wg.Wait()
		})
	}
}

// BenchmarkQueryRebuild measures the old query cost model: every iteration
// mutates the sketch first, so Quantile cannot reuse the cached view and
// pays a full coordinator merge + view build. Control for
// BenchmarkQueryCached; the acceptance criterion is >= 50x between them.
func BenchmarkQueryRebuild(b *testing.B) {
	c, err := NewConcurrent[float64](0.01, 1e-3, 8, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	data := benchData(1 << 20)
	c.AddAll(data)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(data[i&(1<<20-1)])
		if _, err := c.Quantile(0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCached measures single-phi Quantile against an unchanged
// sketch: after the first rebuild every call is a version check plus one
// binary search on the immutable view — zero allocations.
func BenchmarkQueryCached(b *testing.B) {
	c, err := NewConcurrent[float64](0.01, 1e-3, 8, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	c.AddAll(benchData(1 << 20))
	if _, err := c.Quantile(0.5); err != nil { // warm the view
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		phi := float64(i&1023+1) / 1024
		if _, err := c.Quantile(phi); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCachedCDF is the CDF analogue of BenchmarkQueryCached.
func BenchmarkQueryCachedCDF(b *testing.B) {
	c, err := NewConcurrent[float64](0.01, 1e-3, 8, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	c.AddAll(benchData(1 << 20))
	if _, err := c.CDF(0.5); err != nil { // warm the view
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CDF(float64(i&1023) / 1024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogram measures equi-depth boundary extraction over a loaded
// histogram.
func BenchmarkHistogram(b *testing.B) {
	h, err := NewEquiDepth[float64](20, 0.01, 1e-3, WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, v := range benchData(1 << 20) {
		h.Add(v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Boundaries(); err != nil {
			b.Fatal(err)
		}
	}
}
