package quantile

import (
	"cmp"
	"fmt"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/histogram"
	"repro/internal/mrl98"
	"repro/internal/parallel"
)

// ElementCodec serializes individual sketch elements; pass one to
// Checkpoint/RestoreSketch and MarshalShipment/MergeShipments. Built-in
// codecs cover the common column types; implement the interface for custom
// ordered types.
type ElementCodec[T any] = codec.Element[T]

// Float64Codec returns the element codec for float64 sketches.
func Float64Codec() ElementCodec[float64] { return codec.Float64() }

// Int64Codec returns the element codec for int64 sketches.
func Int64Codec() ElementCodec[int64] { return codec.Int64() }

// IntCodec returns the element codec for int sketches.
func IntCodec() ElementCodec[int] { return codec.Int() }

// StringCodec returns the element codec for string sketches.
func StringCodec() ElementCodec[string] { return codec.String() }

// Checkpoint serializes the sketch's complete state — including the
// in-flight fill and the random generator — to a compact, CRC-protected
// binary blob. RestoreSketch reconstructs a sketch that behaves
// identically on all future Adds and Queries, so long-lived summaries
// (e.g. histograms over ever-growing tables) survive process restarts.
func (s *Sketch[T]) Checkpoint(ec ElementCodec[T]) ([]byte, error) {
	st := s.inner.Snapshot()
	st.Eps, st.Delta = s.eps, s.delta
	return codec.MarshalSketch(st, ec)
}

// RestoreSketch reconstructs a sketch from a Checkpoint blob.
func RestoreSketch[T cmp.Ordered](blob []byte, ec ElementCodec[T]) (*Sketch[T], error) {
	st, err := codec.UnmarshalSketch(blob, ec)
	if err != nil {
		return nil, err
	}
	inner, err := core.Restore(st)
	if err != nil {
		return nil, err
	}
	return &Sketch[T]{inner: inner, eps: st.Eps, delta: st.Delta}, nil
}

// Checkpoint serializes the known-N sketch's complete state (see
// Sketch.Checkpoint).
func (s *KnownN[T]) Checkpoint(ec ElementCodec[T]) ([]byte, error) {
	return codec.MarshalKnownN(s.inner.Snapshot(), ec)
}

// RestoreKnownN reconstructs a known-N sketch from a Checkpoint blob.
func RestoreKnownN[T cmp.Ordered](blob []byte, ec ElementCodec[T]) (*KnownN[T], error) {
	st, err := codec.UnmarshalKnownN(blob, ec)
	if err != nil {
		return nil, err
	}
	inner, err := mrl98.Restore(st)
	if err != nil {
		return nil, err
	}
	return &KnownN[T]{inner: inner}, nil
}

// CheckpointEquiDepth serializes a histogram's complete state (boundaries
// sketch, extremes and bucket count) — the paper's Section 1.2 "histogram
// of a dynamically growing table" survives process restarts. (A free
// function because EquiDepth is a type alias.)
func CheckpointEquiDepth[T cmp.Ordered](h *EquiDepth[T], ec ElementCodec[T]) ([]byte, error) {
	return codec.MarshalHistogram(h.Snapshot(), ec)
}

// RestoreEquiDepth reconstructs a histogram from a Checkpoint blob.
func RestoreEquiDepth[T cmp.Ordered](blob []byte, ec ElementCodec[T]) (*EquiDepth[T], error) {
	st, err := codec.UnmarshalHistogram(blob, ec)
	if err != nil {
		return nil, err
	}
	return histogram.Restore(st)
}

// MarshalShipment finalizes the sketch (consuming it, as in a worker whose
// input stream ended) and serializes the resulting Section 6 shipment —
// at most one full and one partial buffer plus the element count — for
// transmission to a coordinator on another machine. The blob is typically
// a few kilobytes regardless of how much data the worker consumed.
func (s *Sketch[T]) MarshalShipment(ec ElementCodec[T]) ([]byte, error) {
	return codec.MarshalShipment(parallel.Ship(s.inner), ec)
}

// ShipAndReset finalizes the concurrent sketch's current contents into a
// single Section 6 shipment blob and resets every shard, so the next call
// covers only data added since this one — the epoch cycle of a cluster
// worker that periodically ships its window to a coordinator. The returned
// count is the number of elements the shipment represents; when nothing
// was added since the last cycle the blob is nil and the count zero.
// Safe to call while other goroutines keep adding.
func (c *Concurrent[T]) ShipAndReset(ec ElementCodec[T]) ([]byte, uint64, error) {
	sh, err := c.shipAndReset()
	if err != nil {
		return nil, 0, err
	}
	if sh.Count == 0 {
		return nil, 0, nil
	}
	blob, err := codec.MarshalShipment(sh, ec)
	if err != nil {
		return nil, 0, err
	}
	return blob, sh.Count, nil
}

// MergeShipments reconstructs worker shipments from their serialized form
// and merges them into a queryable summary — the distributed counterpart
// of Merge. k and b size the coordinator's merge tree; k must match the
// workers' buffer size (it is validated per shipment).
func MergeShipments[T cmp.Ordered](k, b int, seed uint64, ec ElementCodec[T], blobs ...[]byte) (*Merged[T], error) {
	if len(blobs) == 0 {
		return nil, fmt.Errorf("quantile: MergeShipments needs at least one shipment")
	}
	coord, err := parallel.NewCoordinator[T](k, b, seed)
	if err != nil {
		return nil, err
	}
	for i, blob := range blobs {
		sh, err := codec.UnmarshalShipment(blob, ec)
		if err != nil {
			return nil, fmt.Errorf("quantile: shipment %d: %w", i, err)
		}
		if err := coord.Receive(sh); err != nil {
			return nil, fmt.Errorf("quantile: shipment %d: %w", i, err)
		}
	}
	return &Merged[T]{coord: coord}, nil
}
