package quantile

import (
	"cmp"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/optimize"
)

// Universal is the paper's Section 4.7 precomputation construction: a
// sketch sized so that the ⌈1/ε⌉ grid quantiles φ = ε, 2ε, … are all
// simultaneously (ε/2)-approximate with probability ≥ 1−δ. Any requested φ
// is answered from the nearest grid point, which costs at most another ε/2
// of rank error — so the ε guarantee holds for an UNBOUNDED number of
// distinct quantile queries, with memory independent of how many are ever
// asked. Use it when φ is not known in advance (ad-hoc dashboards,
// equi-depth histograms with a bucket count chosen later).
type Universal[T cmp.Ordered] struct {
	inner *core.Sketch[T]
	eps   float64
	delta float64
	grid  []float64
}

// NewUniversal returns a Universal sketch for the given guarantees.
func NewUniversal[T cmp.Ordered](eps, delta float64, opts ...Option) (*Universal[T], error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	p, err := optimize.PrecomputeBound(eps, delta)
	if err != nil {
		return nil, err
	}
	inner, err := core.NewSketch[T](core.Config{
		B: p.B, K: p.K, H: p.H, Policy: o.pol(), Seed: o.seed,
	})
	if err != nil {
		return nil, err
	}
	n := int(math.Ceil(1 / eps))
	grid := make([]float64, n)
	for i := range grid {
		grid[i] = math.Min(1, float64(i+1)*eps)
	}
	return &Universal[T]{inner: inner, eps: eps, delta: delta, grid: grid}, nil
}

// Add feeds one element.
func (u *Universal[T]) Add(v T) { u.inner.Add(v) }

// AddAll feeds a slice of elements.
func (u *Universal[T]) AddAll(vs []T) { u.inner.AddAll(vs) }

// Count returns the number of elements consumed.
func (u *Universal[T]) Count() uint64 { return u.inner.Count() }

// MemoryElements returns the memory footprint in element slots.
func (u *Universal[T]) MemoryElements() int { return u.inner.MemoryElements() }

// GridSize returns the number of maintained grid quantiles (⌈1/ε⌉).
func (u *Universal[T]) GridSize() int { return len(u.grid) }

// Nearest returns the grid quantile a query for phi is answered from.
func (u *Universal[T]) Nearest(phi float64) (float64, error) {
	if phi <= 0 || phi > 1 {
		return 0, fmt.Errorf("quantile: phi %v out of (0,1]", phi)
	}
	i := int(math.Round(phi/u.eps)) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(u.grid) {
		i = len(u.grid) - 1
	}
	return u.grid[i], nil
}

// Quantile answers a query for any φ from the nearest grid quantile.
func (u *Universal[T]) Quantile(phi float64) (T, error) {
	var zero T
	g, err := u.Nearest(phi)
	if err != nil {
		return zero, err
	}
	return u.inner.QueryOne(g)
}

// Quantiles answers several queries in request order.
func (u *Universal[T]) Quantiles(phis []float64) ([]T, error) {
	gs := make([]float64, len(phis))
	for i, phi := range phis {
		g, err := u.Nearest(phi)
		if err != nil {
			return nil, err
		}
		gs[i] = g
	}
	return u.inner.Query(gs)
}

// Epsilon returns the configured rank-error bound.
func (u *Universal[T]) Epsilon() float64 { return u.eps }

// Delta returns the configured failure probability.
func (u *Universal[T]) Delta() float64 { return u.delta }
