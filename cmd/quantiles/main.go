// Command quantiles computes approximate quantiles of a stream of numbers
// read from stdin (or files), one value per line, in a single pass with
// bounded memory.
//
//	seq 1 1000000 | quantiles -phi 0.5,0.9,0.99
//	quantiles -eps 0.001 -algo reservoir data.txt
//	quantiles -algo extreme -phi 0.99 -n 1000000 sales.txt
//
// Algorithms: "unknown" (default; the paper's unknown-N algorithm),
// "known" (MRL98, requires -n), "reservoir" (folklore baseline) and
// "extreme" (Section 7, single -phi near 0 or 1, requires -n).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	quantile "repro"
	"repro/internal/ingest"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "quantiles: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("quantiles", flag.ContinueOnError)
	var (
		phiList = fs.String("phi", "0.01,0.05,0.25,0.5,0.75,0.95,0.99", "comma-separated quantiles in (0,1]")
		eps     = fs.Float64("eps", 0.01, "rank-error bound as a fraction of the stream length")
		delta   = fs.Float64("delta", 1e-4, "failure probability")
		algo    = fs.String("algo", "unknown", "algorithm: unknown | known | reservoir | extreme")
		n       = fs.Uint64("n", 0, "declared stream length (required for -algo known/extreme)")
		seed    = fs.Uint64("seed", 1, "random seed")
		pol     = fs.String("policy", "mrl", "collapse policy: mrl | munro-paterson | ars")
		stats   = fs.Bool("stats", false, "print sketch internals after the run")
		ship    = fs.String("ship", "", "write a worker shipment to this file instead of printing quantiles (unknown algo only; merge with mergeq)")
		csvMode = fs.Bool("csv", false, "parse input as CSV and read one column")
		column  = fs.String("column", "0", "CSV column: 0-based index, or a name with -header")
		header  = fs.Bool("header", false, "first CSV record is a header row")
		skipBad = fs.Bool("skip-bad", false, "skip unparseable values instead of failing")
		comma   = fs.String("comma", ",", "CSV field separator")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	phis, err := parsePhis(*phiList)
	if err != nil {
		return err
	}

	var input io.Reader = stdin
	if fs.NArg() > 0 {
		readers := make([]io.Reader, 0, fs.NArg())
		for _, name := range fs.Args() {
			f, err := os.Open(name)
			if err != nil {
				return err
			}
			defer f.Close()
			readers = append(readers, f)
		}
		input = io.MultiReader(readers...)
	}

	reader, err := newReader(input, *csvMode, *column, *header, *skipBad, *comma)
	if err != nil {
		return err
	}
	feed := func(add func(float64)) error {
		if err := reader.Drain(add); err != nil {
			return err
		}
		if n := reader.Skipped(); n > 0 {
			fmt.Fprintf(stdout, "# skipped %d unparseable values\n", n)
		}
		return nil
	}

	switch *algo {
	case "unknown":
		s, err := quantile.New[float64](*eps, *delta,
			quantile.WithSeed(*seed), quantile.WithPolicy(*pol))
		if err != nil {
			return err
		}
		if err := feed(s.Add); err != nil {
			return err
		}
		if *ship != "" {
			blob, err := s.MarshalShipment(quantile.Float64Codec())
			if err != nil {
				return err
			}
			if err := os.WriteFile(*ship, blob, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "# shipped %d elements as %d bytes to %s\n", s.Count(), len(blob), *ship)
			return nil
		}
		if err := report(stdout, phis, s.Quantiles, s.Count()); err != nil {
			return err
		}
		if *stats {
			st := s.Stats()
			fmt.Fprintf(stdout, "# memory=%d elements, tree height=%d, collapses=%d, sampling rate=1/%d\n",
				st.MemoryElements, st.Height, st.Collapses, st.SamplingRate)
		}
	case "known":
		if *n == 0 {
			return fmt.Errorf("-algo known requires -n")
		}
		s, err := quantile.NewKnownN[float64](*n, *eps, *delta,
			quantile.WithSeed(*seed), quantile.WithPolicy(*pol))
		if err != nil {
			return err
		}
		if err := feed(s.Add); err != nil {
			return err
		}
		if s.Overflowed() {
			fmt.Fprintf(stdout, "# warning: stream exceeded declared n=%d; guarantee void\n", *n)
		}
		if err := report(stdout, phis, s.Quantiles, s.Count()); err != nil {
			return err
		}
		if *stats {
			fmt.Fprintf(stdout, "# memory=%d elements\n", s.MemoryElements())
		}
	case "reservoir":
		s, err := quantile.NewReservoir[float64](*eps, *delta, quantile.WithSeed(*seed))
		if err != nil {
			return err
		}
		if err := feed(s.Add); err != nil {
			return err
		}
		for _, phi := range phis {
			v, err := s.Query(phi)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "%g\t%v\n", phi, v)
		}
		if *stats {
			fmt.Fprintf(stdout, "# memory=%d elements (n=%d)\n", s.MemoryElements(), s.Count())
		}
	case "extreme":
		if *n == 0 {
			return fmt.Errorf("-algo extreme requires -n")
		}
		if len(phis) != 1 {
			return fmt.Errorf("-algo extreme takes exactly one -phi")
		}
		s, err := quantile.NewExtreme[float64](phis[0], *eps, *delta, *n, quantile.WithSeed(*seed))
		if err != nil {
			return err
		}
		if err := feed(s.Add); err != nil {
			return err
		}
		v, err := s.Query()
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%g\t%v\n", phis[0], v)
		if *stats {
			fmt.Fprintf(stdout, "# memory=%d elements (n=%d)\n", s.MemoryElements(), s.Count())
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	return nil
}

func parsePhis(list string) ([]float64, error) {
	parts := strings.Split(list, ",")
	phis := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad quantile %q: %v", p, err)
		}
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("quantile %v out of (0,1]", v)
		}
		phis = append(phis, v)
	}
	if len(phis) == 0 {
		return nil, fmt.Errorf("no quantiles requested")
	}
	return phis, nil
}

// newReader builds the value reader for the selected input format.
func newReader(input io.Reader, csvMode bool, column string, header, skipBad bool, comma string) (*ingest.Reader, error) {
	opts := ingest.Options{Column: column, Header: header, SkipBad: skipBad}
	if csvMode {
		if len(comma) != 1 {
			return nil, fmt.Errorf("-comma must be a single character")
		}
		opts.Comma = rune(comma[0])
		return ingest.CSV(input, opts)
	}
	return ingest.Plain(input, opts), nil
}

func report(w io.Writer, phis []float64, query func([]float64) ([]float64, error), n uint64) error {
	if n == 0 {
		return fmt.Errorf("no input values")
	}
	vals, err := query(phis)
	if err != nil {
		return err
	}
	for i, phi := range phis {
		fmt.Fprintf(w, "%g\t%v\n", phi, vals[i])
	}
	return nil
}
