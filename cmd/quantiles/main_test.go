package main

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
)

// osStat returns the size of a file.
func osStat(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

func numbers(n int) string {
	var b strings.Builder
	for i := 1; i <= n; i++ {
		fmt.Fprintln(&b, i)
	}
	return b.String()
}

// runCLI executes run and returns stdout lines.
func runCLI(t *testing.T, args []string, stdin string) []string {
	t.Helper()
	var out strings.Builder
	if err := run(args, strings.NewReader(stdin), &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return strings.Split(strings.TrimSpace(out.String()), "\n")
}

// parseLine extracts "phi\tvalue".
func parseLine(t *testing.T, line string) (phi, v float64) {
	t.Helper()
	parts := strings.Split(line, "\t")
	if len(parts) != 2 {
		t.Fatalf("bad output line %q", line)
	}
	phi, err1 := strconv.ParseFloat(parts[0], 64)
	v, err2 := strconv.ParseFloat(parts[1], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable line %q", line)
	}
	return phi, v
}

func TestUnknownAlgorithm(t *testing.T) {
	lines := runCLI(t, []string{"-phi", "0.5,0.9", "-eps", "0.01"}, numbers(100_000))
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	for _, line := range lines {
		phi, v := parseLine(t, line)
		if math.Abs(v-phi*100_000) > 0.01*100_000 {
			t.Errorf("phi=%v: value %v outside eps window", phi, v)
		}
	}
}

func TestKnownAlgorithm(t *testing.T) {
	lines := runCLI(t, []string{"-algo", "known", "-n", "50000", "-phi", "0.5"}, numbers(50_000))
	_, v := parseLine(t, lines[0])
	if math.Abs(v-25_000) > 500 {
		t.Errorf("known median %v", v)
	}
}

func TestKnownOverflowWarning(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-algo", "known", "-n", "10", "-phi", "0.5"},
		strings.NewReader(numbers(100)), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "warning") {
		t.Error("no overflow warning printed")
	}
}

func TestReservoirAlgorithm(t *testing.T) {
	lines := runCLI(t, []string{"-algo", "reservoir", "-phi", "0.5", "-eps", "0.05"}, numbers(20_000))
	_, v := parseLine(t, lines[0])
	if math.Abs(v-10_000) > 0.05*20_000 {
		t.Errorf("reservoir median %v", v)
	}
}

func TestExtremeAlgorithm(t *testing.T) {
	lines := runCLI(t, []string{"-algo", "extreme", "-phi", "0.99", "-n", "100000", "-eps", "0.005"}, numbers(100_000))
	_, v := parseLine(t, lines[0])
	if math.Abs(v-99_000) > 0.005*100_000 {
		t.Errorf("extreme p99 %v", v)
	}
}

func TestStatsFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-stats", "-phi", "0.5"}, strings.NewReader(numbers(1000)), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# memory=") {
		t.Error("stats line missing")
	}
}

func TestErrors(t *testing.T) {
	cases := [][]string{
		{"-algo", "bogus"},
		{"-algo", "known"},               // missing -n
		{"-algo", "extreme", "-n", "10"}, // multiple phis by default
		{"-phi", "0"},
		{"-phi", "1.5"},
		{"-phi", "abc"},
		{"-phi", ""},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, strings.NewReader(numbers(10)), &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
	// Empty input.
	var out strings.Builder
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Error("empty input accepted")
	}
	// Garbage input.
	if err := run(nil, strings.NewReader("1 2 pear"), &out); err == nil {
		t.Error("garbage input accepted")
	}
}

func TestShipFlag(t *testing.T) {
	path := t.TempDir() + "/worker.q"
	var out strings.Builder
	if err := run([]string{"-ship", path, "-eps", "0.05"}, strings.NewReader(numbers(20_000)), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "shipped 20000 elements") {
		t.Errorf("ship output: %q", out.String())
	}
	info, err := osStat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info <= 0 {
		t.Error("empty shipment file")
	}
}

func TestParsePhis(t *testing.T) {
	phis, err := parsePhis("0.5, 0.9,1")
	if err != nil || len(phis) != 3 || phis[2] != 1 {
		t.Errorf("parsePhis: %v %v", phis, err)
	}
}

func TestCSVMode(t *testing.T) {
	csv := "region,amount\n"
	for i := 1; i <= 1000; i++ {
		csv += fmt.Sprintf("r%d,%d\n", i%3, i)
	}
	lines := runCLI(t, []string{"-csv", "-header", "-column", "amount", "-phi", "0.5", "-eps", "0.05"}, csv)
	_, v := parseLine(t, lines[0])
	if math.Abs(v-500) > 50 {
		t.Errorf("csv median %v", v)
	}
}

func TestCSVSkipBad(t *testing.T) {
	csv := "v\n1\noops\n3\n"
	var out strings.Builder
	if err := run([]string{"-csv", "-header", "-column", "v", "-skip-bad", "-phi", "1"},
		strings.NewReader(csv), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# skipped 1 unparseable values") {
		t.Errorf("missing skip report: %q", out.String())
	}
}

func TestCSVErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-csv", "-header", "-column", "nope", "-phi", "0.5"},
		strings.NewReader("a,b\n1,2\n"), &out); err == nil {
		t.Error("unknown column accepted")
	}
	if err := run([]string{"-csv", "-comma", ";;", "-phi", "0.5"},
		strings.NewReader("1;2\n"), &out); err == nil {
		t.Error("multi-char comma accepted")
	}
}

func TestPolicyFlag(t *testing.T) {
	for _, pol := range []string{"mrl", "munro-paterson", "ars"} {
		lines := runCLI(t, []string{"-policy", pol, "-phi", "0.5", "-eps", "0.05"}, numbers(10_000))
		_, v := parseLine(t, lines[0])
		if math.Abs(v-5000) > 0.05*10_000 {
			t.Errorf("policy %s median %v", pol, v)
		}
	}
}
