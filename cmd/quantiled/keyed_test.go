package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/obs"
)

func TestParseFlagsKeyed(t *testing.T) {
	good := [][]string{
		{"-keys-max", "1000"},
		{"-key-ttl", "5m"},
		{"-key-shards", "32"},
		{"-role", "worker", "-coordinator", "http://c", "-keys-max", "10"},
		{"-window", "5m"},
		{"-window", "5m", "-window-epochs", "20"},
		{"-role", "worker", "-coordinator", "http://c", "-window", "1m"},
	}
	for _, args := range good {
		if _, err := parseFlags(args, io.Discard); err != nil {
			t.Errorf("parseFlags(%v): %v", args, err)
		}
	}
	bad := [][]string{
		{"-keys-max", "0"},
		{"-keys-max", "-5"},
		{"-key-ttl", "-1s"},
		{"-key-shards", "3"},
		{"-key-shards", "-2"},
		{"-role", "coordinator", "-keys-max", "10"},
		{"-role", "aggregator", "-parent", "http://p", "-key-ttl", "1m"},
		{"-engine", "kll", "-keys-max", "10"},
		{"-engine", "gk", "-key-shards", "16"},
		{"-window", "-5m"},
		{"-window-epochs", "10"}, // epoch count without a span
		{"-window", "5m", "-window-epochs", "-2"},
		{"-role", "coordinator", "-window", "5m"},
		{"-engine", "kll", "-window", "5m"},
	}
	for _, args := range bad {
		if _, err := parseFlags(args, io.Discard); err == nil {
			t.Errorf("parseFlags(%v) accepted", args)
		}
	}
}

// postKeyedFrame ships one keyed slab frame to url and returns the status.
func postKeyedFrame(t *testing.T, url, key string, vs []float64) int {
	t.Helper()
	frame := codec.AppendKeyedIngestFrame(nil, []byte(key), vs)
	resp, err := http.Post(url+"/v1/ingest/keyed", codec.KeyedIngestContentType, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// getJSON fetches url and decodes the JSON body.
func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestStandaloneKeyedService boots the standalone service with keyed flags
// and exercises the keyed surface end to end through its handler.
func TestStandaloneKeyedService(t *testing.T) {
	cfg, err := parseFlags([]string{"-keys-max", "64", "-key-shards", "4", "-seed", "7"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := newService(cfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svc.banner, "keyed: max 64 keys") {
		t.Errorf("banner %q missing keyed config", svc.banner)
	}
	ts := httptest.NewServer(svc.handler)
	defer ts.Close()

	if code := postKeyedFrame(t, ts.URL, "tenant-a", []float64{1, 2, 3, 4, 5}); code != 200 {
		t.Fatalf("keyed ingest status %d", code)
	}
	code, out := getJSON(t, ts.URL+"/quantile?key=tenant-a&phi=0.5")
	if code != 200 {
		t.Fatalf("keyed quantile status %d: %v", code, out)
	}
	if med := out["0.5"].(float64); med != 3 {
		t.Errorf("median = %v, want 3", med)
	}
	if code, _ := getJSON(t, ts.URL+"/quantile?key=ghost"); code != 404 {
		t.Errorf("unknown key status %d, want 404", code)
	}
}

// TestKeyedSweepLoop checks the background TTL sweeper: with a tiny TTL,
// idle keys vanish from occupancy without any further keyed traffic.
func TestKeyedSweepLoop(t *testing.T) {
	cfg, err := parseFlags([]string{"-key-ttl", "50ms"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := newService(cfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	runKeyedSweepTrial(t, svc)
}

// TestWorkerKeyedSweepLoop is the role-coverage companion: the PR 10
// sweeper audit moved the sweep wrapping out of the per-role cases into
// newService, and this test pins the worker role — whose run loop is the
// shipping loop, not a bare ctx wait — sweeping idle keys exactly like
// standalone, with zero keyed query traffic against the expiring key.
func TestWorkerKeyedSweepLoop(t *testing.T) {
	// A stub coordinator that acknowledges every shipment, so the worker's
	// shipping loop runs realistically alongside the sweeper.
	coord := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	defer coord.Close()

	cfg, err := parseFlags([]string{
		"-role", "worker", "-coordinator", coord.URL,
		"-ship-interval", "100ms", "-key-ttl", "50ms",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := newService(cfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	runKeyedSweepTrial(t, svc)
}

// runKeyedSweepTrial ingests one key into a running service and waits for
// the background sweeper to evict it. The key receives no touches after
// ingest — only /stats polling, which does not reset idleness — so an
// eviction proves the sweep loop is wired for this role.
func runKeyedSweepTrial(t *testing.T, svc *service) {
	t.Helper()
	ts := httptest.NewServer(svc.handler)
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); svc.run(ctx) }()

	if code := postKeyedFrame(t, ts.URL, "idle", []float64{1}); code != 200 {
		t.Fatal("ingest failed")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, out := getJSON(t, ts.URL+"/stats")
		ks := out["keyed"].(map[string]any)
		if ks["keys"].(float64) == 0 && ks["evicted_ttl"].(float64) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle key never swept: keyed block %v", ks)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	<-done
}

// TestWindowedStandaloneService boots standalone with -window flags and
// drives a windowed query end to end through the role's handler.
func TestWindowedStandaloneService(t *testing.T) {
	cfg, err := parseFlags([]string{"-window", "5m", "-window-epochs", "10", "-seed", "3"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := newService(cfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svc.banner, "window 5m0s (10×30s)") {
		t.Errorf("banner %q missing window config", svc.banner)
	}
	ts := httptest.NewServer(svc.handler)
	defer ts.Close()

	if code := postKeyedFrame(t, ts.URL, "svc", []float64{1, 2, 3, 4, 5}); code != 200 {
		t.Fatal("ingest failed")
	}
	code, out := getJSON(t, ts.URL+"/quantile?key=svc&window=30s&phi=0.5")
	if code != 200 {
		t.Fatalf("windowed quantile status %d: %v", code, out)
	}
	if med := out["0.5"].(float64); med != 3 {
		t.Errorf("windowed median = %v, want 3", med)
	}
	if code, out := getJSON(t, ts.URL+"/quantile?key=svc&window=6m"); code != 400 {
		t.Errorf("over-span window status %d: %v, want 400", code, out)
	}
	code, out = getJSON(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatal(code)
	}
	win := out["keyed"].(map[string]any)["window"].(map[string]any)
	if win["epochs"].(float64) != 10 || win["span_seconds"].(float64) != 300 {
		t.Errorf("stats window block %v", win)
	}
}
