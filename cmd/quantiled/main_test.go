package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseFlagsRoles(t *testing.T) {
	if _, err := parseFlags([]string{"-role", "standalone"}, io.Discard); err != nil {
		t.Errorf("standalone: %v", err)
	}
	if _, err := parseFlags([]string{"-role", "coordinator", "-checkpoint", "/tmp/x.ckpt"}, io.Discard); err != nil {
		t.Errorf("coordinator: %v", err)
	}
	cfg, err := parseFlags([]string{"-role", "worker", "-coordinator", "http://localhost:9090", "-addr", ":8081"}, io.Discard)
	if err != nil {
		t.Fatalf("worker: %v", err)
	}
	if cfg.workerID == "" {
		t.Error("worker id not defaulted")
	}
	if _, err := parseFlags([]string{"-role", "worker"}, io.Discard); err == nil {
		t.Error("worker without -coordinator accepted")
	}
	if _, err := parseFlags([]string{"-role", "replicant"}, io.Discard); err == nil {
		t.Error("unknown role accepted")
	}
}

func TestParseFlagsAggregator(t *testing.T) {
	cfg, err := parseFlags([]string{"-role", "aggregator", "-parent", "http://localhost:9090", "-addr", ":9091"}, io.Discard)
	if err != nil {
		t.Fatalf("aggregator: %v", err)
	}
	if cfg.level != 1 {
		t.Errorf("level not defaulted to 1: %d", cfg.level)
	}
	if cfg.workerID == "" {
		t.Error("aggregator id not defaulted")
	}
	if cfg2, err := parseFlags([]string{"-role", "aggregator", "-parent", "http://p", "-level", "2"}, io.Discard); err != nil || cfg2.level != 2 {
		t.Errorf("explicit -level 2: cfg=%+v err=%v", cfg2, err)
	}
	for _, bad := range [][]string{
		{"-role", "aggregator"}, // no parent
		{"-role", "aggregator", "-parent", "http://p", "-level", "-1"},             // level below the tier
		{"-role", "aggregator", "-parent", "http://p", "-coordinator", "http://c"}, // wrong upstream flag
		{"-role", "worker", "-coordinator", "http://c", "-parent", "http://p"},     // -parent outside aggregator role
		{"-role", "coordinator", "-level", "1"},                                    // -level outside aggregator role
		{"-role", "standalone", "-parent", "http://p"},
	} {
		if _, err := parseFlags(bad, io.Discard); err == nil {
			t.Errorf("args %v accepted", bad)
		}
	}
}

func TestParseFlagsIngestFormat(t *testing.T) {
	cfg, err := parseFlags([]string{"-role", "worker", "-coordinator", "http://c", "-ingest-format", "binary"}, io.Discard)
	if err != nil {
		t.Fatalf("binary worker: %v", err)
	}
	if cfg.ingestFormat != "binary" {
		t.Errorf("ingest format not captured: %+v", cfg)
	}
	if _, err := parseFlags([]string{"-role", "aggregator", "-parent", "http://p", "-ingest-format", "binary"}, io.Discard); err != nil {
		t.Errorf("binary aggregator: %v", err)
	}
	for _, bad := range [][]string{
		{"-role", "worker", "-coordinator", "http://c", "-ingest-format", "protobuf"}, // unknown format
		{"-role", "standalone", "-ingest-format", "binary"},                           // nothing ships upstream
		{"-role", "coordinator", "-ingest-format", "binary"},                          // the root only receives
	} {
		if _, err := parseFlags(bad, io.Discard); err == nil {
			t.Errorf("args %v accepted", bad)
		}
	}
}

func TestParseFlagsLogging(t *testing.T) {
	cfg, err := parseFlags([]string{"-log-level", "debug", "-log-format", "json", "-debug-addr", "127.0.0.1:0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.logLevel != "debug" || cfg.logFormat != "json" || cfg.debugAddr != "127.0.0.1:0" {
		t.Errorf("logging flags not captured: %+v", cfg)
	}
	if _, err := parseFlags([]string{"-log-level", "loud"}, io.Discard); err == nil {
		t.Error("unknown log level accepted")
	}
	if _, err := parseFlags([]string{"-log-format", "yaml"}, io.Discard); err == nil {
		t.Error("unknown log format accepted")
	}
}

// TestWorkerCoordinatorServices wires a worker service to a coordinator
// service the way main does, exercising the full flag-to-fleet path.
func TestWorkerCoordinatorServices(t *testing.T) {
	ccfg, err := parseFlags([]string{"-role", "coordinator", "-eps", "0.02", "-delta", "1e-3"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	csvc, err := newService(ccfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(csvc.handler)
	defer cs.Close()

	wcfg, err := parseFlags([]string{
		"-role", "worker", "-coordinator", cs.URL,
		"-worker-id", "w-test", "-eps", "0.02", "-delta", "1e-3",
		"-ship-interval", "20ms",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	wsvc, err := newService(wcfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	ws := httptest.NewServer(wsvc.handler)
	defer ws.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		wsvc.run(ctx)
		close(done)
	}()

	var feed strings.Builder
	for i := 0; i < 10_000; i++ {
		feed.WriteString("1 ")
	}
	resp, err := http.Post(ws.URL+"/add", "text/plain", strings.NewReader(feed.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Cancel triggers the worker's final drain; everything must arrive.
	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker loop did not stop")
	}
	resp, err = http.Get(cs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"count":10000`) {
		t.Errorf("coordinator healthz after drain: %s", body)
	}

	// The worker's shipping counters share the ingest surface's registry.
	resp, err = http.Get(ws.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`http_requests_total{endpoint="add"} 1`,
		`cluster_ship_epochs_shipped_total{worker="w-test"}`,
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("worker /metrics missing %q:\n%s", want, prom)
		}
	}
}

// TestThreeLevelServices chains worker → aggregator → coordinator the way
// main would wire a height-3 tree, and checks every element fed at the leaf
// reaches the root through the mid-tier after the drains.
func TestThreeLevelServices(t *testing.T) {
	ccfg, err := parseFlags([]string{"-role", "coordinator", "-eps", "0.01", "-delta", "1e-3"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	csvc, err := newService(ccfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(csvc.handler)
	defer cs.Close()

	acfg, err := parseFlags([]string{
		"-role", "aggregator", "-parent", cs.URL, "-level", "1",
		"-worker-id", "a-test", "-eps", "0.01", "-delta", "1e-3",
		"-ship-interval", "20ms",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	asvc, err := newService(acfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	as := httptest.NewServer(asvc.handler)
	defer as.Close()

	wcfg, err := parseFlags([]string{
		"-role", "worker", "-coordinator", as.URL,
		"-worker-id", "w-test", "-eps", "0.01", "-delta", "1e-3",
		"-ship-interval", "20ms",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	wsvc, err := newService(wcfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	ws := httptest.NewServer(wsvc.handler)
	defer ws.Close()

	wctx, wcancel := context.WithCancel(context.Background())
	actx, acancel := context.WithCancel(context.Background())
	wdone, adone := make(chan struct{}), make(chan struct{})
	go func() { asvc.run(actx); close(adone) }()
	go func() { wsvc.run(wctx); close(wdone) }()

	var feed strings.Builder
	for i := 0; i < 5_000; i++ {
		feed.WriteString("2 ")
	}
	resp, err := http.Post(ws.URL+"/add", "text/plain", strings.NewReader(feed.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Leaf drains into the mid-tier, then the mid-tier drains into the root.
	wcancel()
	select {
	case <-wdone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker loop did not stop")
	}
	acancel()
	select {
	case <-adone:
	case <-time.After(10 * time.Second):
		t.Fatal("aggregator loop did not stop")
	}

	resp, err = http.Get(cs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"count":5000`) {
		t.Errorf("root healthz after two-stage drain: %s", body)
	}

	// The mid-tier's /stats declares its role, and /metrics carries both
	// its coordinator-side and shipping-side series.
	resp, err = http.Get(as.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`"role":"aggregator"`, `"level":1`, `"id":"a-test"`} {
		if !strings.Contains(string(stats), want) {
			t.Errorf("aggregator /stats missing %s:\n%s", want, stats)
		}
	}
	resp, err = http.Get(as.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`cluster_ship_epochs_shipped_total{worker="a-test"}`,
		"cluster_shipments_accepted_total",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("aggregator /metrics missing %q:\n%s", want, prom)
		}
	}
}

func TestServeStopsOnCancel(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "127.0.0.1:0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := newService(cfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, cfg, svc, obs.Discard()) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("serve did not return after cancellation")
	}
}

// TestDebugServerServesPprof pins the -debug-addr surface: the profiling
// index and the symbol endpoint must answer on the side listener.
func TestDebugServerServesPprof(t *testing.T) {
	stop, addr, err := startDebugServer("127.0.0.1:0", obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/symbol"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d (%s)", path, resp.StatusCode, body)
		}
	}
	// The profiling surface must NOT be on the public mux of any role.
	cfg, err := parseFlags(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := newService(cfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	svc.handler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code == http.StatusOK {
		t.Error("pprof index answered on the public mux")
	}
}
