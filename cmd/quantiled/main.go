// Command quantiled serves streaming quantiles over HTTP: a sidecar
// process that accepts numbers and answers percentile, CDF and histogram
// queries with the paper's memory guarantees.
//
//	quantiled -addr :8080 -eps 0.01 -delta 1e-4
//	curl -d "$(seq 1 100000)" localhost:8080/add
//	curl 'localhost:8080/quantile?phi=0.5,0.99'
//	curl 'localhost:8080/cdf?v=42000'
//	curl 'localhost:8080/histogram?buckets=10'
//	curl  localhost:8080/stats
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	quantile "repro"
	"repro/httpapi"
)

func main() {
	var (
		addr   = flag.String("addr", ":8080", "listen address")
		eps    = flag.Float64("eps", 0.01, "rank-error bound")
		delta  = flag.Float64("delta", 1e-4, "failure probability")
		shards = flag.Int("shards", 0, "concurrency shards (0 = default)")
		seed   = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	srv, err := httpapi.New(*eps, *delta, *shards, quantile.WithSeed(*seed))
	if err != nil {
		fmt.Fprintf(os.Stderr, "quantiled: %v\n", err)
		os.Exit(1)
	}
	log.Printf("quantiled listening on %s (eps=%g delta=%g)", *addr, *eps, *delta)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
