// Command quantiled serves streaming quantiles over HTTP. It runs in four
// roles:
//
//   - standalone (default): the original sidecar — accept numbers, answer
//     percentile, CDF and histogram queries with the paper's memory
//     guarantees.
//   - worker: the same ingest surface, plus a Section 6 shipping loop that
//     periodically finalizes the current window and POSTs it to a
//     coordinator, with retries, backoff and an undelivered-epoch queue.
//   - coordinator: accepts worker shipments on POST /v1/ship, deduplicates
//     retransmissions, merges through the paper's collapse tree, answers
//     aggregate queries, and checkpoints its state to disk for crash
//     recovery.
//   - aggregator: a mid-tier node that is both — a coordinator toward its
//     children (same /v1/ship surface and dedup) and a worker toward its
//     parent (-parent), periodically cutting its merged window and shipping
//     it upstream. -level states how many hops below the root it sits.
//     Every node in one tree must run the same ε and δ; for a tree of
//     height h, give each node the per-level budget ε_root/h (see
//     cluster/agg.PerLevelEps and DESIGN.md).
//
// Standalone:
//
//	quantiled -addr :8080 -eps 0.01 -delta 1e-4
//	curl -d "$(seq 1 100000)" localhost:8080/add
//	curl 'localhost:8080/quantile?phi=0.5,0.99'
//
// mrl99 ingest roles (standalone and worker) also run the multi-tenant
// keyed store: POST /v1/ingest/keyed routes binary slabs to per-key
// sketches and `key=` on /quantile//cdf queries them. -keys-max bounds the
// resident keys (LRU eviction beyond it), -key-ttl expires idle keys (a
// background sweep reclaims them), and -key-shards sets the lock striping:
//
//	quantiled -addr :8080 -keys-max 100000 -key-ttl 15m
//
// A fleet:
//
//	quantiled -role coordinator -addr :9090 -checkpoint /var/lib/quantiled.ckpt
//	quantiled -role worker -addr :8081 -coordinator http://localhost:9090 -ship-interval 5s
//	quantiled -role worker -addr :8082 -coordinator http://localhost:9090 -ship-interval 5s
//	curl -d "$(seq 1 50000)"      localhost:8081/add
//	curl -d "$(seq 50001 100000)" localhost:8082/add
//	curl 'localhost:9090/quantile?phi=0.5,0.99'   # union of both workers
//	curl  localhost:9090/healthz
//	curl  localhost:9090/metrics
//
// A three-level tree (root ε=0.01 → per-node ε=0.01/3; workers point at
// their ring-assigned aggregator instead of the root):
//
//	quantiled -role coordinator -addr :9090 -eps 0.00333 -delta 1e-4
//	quantiled -role aggregator -addr :9091 -parent http://localhost:9090 -level 1 \
//	    -eps 0.00333 -delta 1e-4 -checkpoint /var/lib/quantiled-a1.ckpt
//	quantiled -role worker -addr :8081 -coordinator http://localhost:9091 \
//	    -eps 0.00333 -delta 1e-4
//
// Observability: every role serves Prometheus metrics on GET /metrics
// (workers expose their shipping counters on the same registry as the
// ingest surface). Logs are structured (-log-format text|json,
// -log-level debug|info|warn|error), and -debug-addr starts a separate
// net/http/pprof listener — separate so profiling endpoints are never
// exposed on the public port:
//
//	quantiled -log-format json -log-level debug -debug-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//
// All roles serve with read/write/idle timeouts and drain gracefully on
// SIGINT/SIGTERM: workers ship their tail window, the coordinator writes a
// final checkpoint.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	quantile "repro"
	"repro/cluster"
	"repro/cluster/agg"
	"repro/httpapi"
	"repro/internal/engine"
	"repro/internal/obs"
)

type config struct {
	addr   string
	eps    float64
	delta  float64
	shards int
	seed   uint64
	engine string

	keysMax      int
	keyTTL       time.Duration
	keyShards    int
	window       time.Duration
	windowEpochs int

	role           string
	coordinatorURL string
	workerID       string
	shipInterval   time.Duration
	ingestFormat   string

	parentURL string
	level     int

	checkpoint         string
	checkpointInterval time.Duration

	maxBodyBytes int64

	logLevel  string
	logFormat string
	debugAddr string
}

func parseFlags(args []string, stderr io.Writer) (config, error) {
	fs := flag.NewFlagSet("quantiled", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.Float64Var(&cfg.eps, "eps", 0.01, "rank-error bound")
	fs.Float64Var(&cfg.delta, "delta", 1e-4, "failure probability")
	fs.IntVar(&cfg.shards, "shards", 0, "concurrency shards (0 = default)")
	fs.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	fs.StringVar(&cfg.engine, "engine", "mrl99", "sketch engine: mrl99, kll or gk (every node in one tree must agree)")
	fs.IntVar(&cfg.keysMax, "keys-max", httpapi.DefaultMaxKeys, "keyed-store key cap: distinct keys resident before LRU eviction (mrl99 ingest roles)")
	fs.DurationVar(&cfg.keyTTL, "key-ttl", 0, "evict keys idle longer than this (0 disables; mrl99 ingest roles)")
	fs.IntVar(&cfg.keyShards, "key-shards", 0, "keyed-store lock stripes, a power of two (0 = default; mrl99 ingest roles)")
	fs.DurationVar(&cfg.window, "window", 0, "per-key windowed-query span: window= queries cover up to this much recent history (0 disables; mrl99 ingest roles)")
	fs.IntVar(&cfg.windowEpochs, "window-epochs", 0, "tumbling epochs per window ring (0 = default; requires -window)")
	fs.StringVar(&cfg.role, "role", "standalone", "standalone, worker, coordinator or aggregator")
	fs.StringVar(&cfg.coordinatorURL, "coordinator", "", "coordinator base URL (worker role)")
	fs.StringVar(&cfg.workerID, "worker-id", "", "stable node identity (worker and aggregator roles; default hostname+addr)")
	fs.DurationVar(&cfg.shipInterval, "ship-interval", 5*time.Second, "how often a worker or aggregator ships its window")
	fs.StringVar(&cfg.ingestFormat, "ingest-format", "json", "wire format for shipping ingested windows upstream: json or binary (worker and aggregator roles)")
	fs.StringVar(&cfg.parentURL, "parent", "", "parent base URL (aggregator role)")
	fs.IntVar(&cfg.level, "level", 0, "tier of an aggregator, hops below the root (aggregator role; default 1)")
	fs.StringVar(&cfg.checkpoint, "checkpoint", "", "checkpoint file (coordinator and aggregator roles; empty disables)")
	fs.DurationVar(&cfg.checkpointInterval, "checkpoint-interval", 30*time.Second, "how often a coordinator or aggregator checkpoints")
	fs.Int64Var(&cfg.maxBodyBytes, "max-body-bytes", 0, "request body cap in bytes (0 = default)")
	fs.StringVar(&cfg.logLevel, "log-level", "info", "log level: debug, info, warn or error")
	fs.StringVar(&cfg.logFormat, "log-format", "text", "log format: text or json")
	fs.StringVar(&cfg.debugAddr, "debug-addr", "", "separate listen address for net/http/pprof (empty disables)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	name, err := engine.Normalize(cfg.engine)
	if err != nil {
		return cfg, err
	}
	cfg.engine = name
	if _, err := obs.ParseLevel(cfg.logLevel); err != nil {
		return cfg, err
	}
	if cfg.logFormat != "text" && cfg.logFormat != "json" {
		return cfg, fmt.Errorf("unknown log format %q (want text or json)", cfg.logFormat)
	}
	switch cfg.role {
	case "standalone", "coordinator":
	case "worker":
		if cfg.coordinatorURL == "" {
			return cfg, fmt.Errorf("worker role requires -coordinator URL")
		}
		defaultNodeID(&cfg)
	case "aggregator":
		if cfg.parentURL == "" {
			return cfg, fmt.Errorf("aggregator role requires -parent URL")
		}
		if cfg.level == 0 {
			cfg.level = 1
		}
		if cfg.level < 1 {
			return cfg, fmt.Errorf("-level %d invalid: aggregators sit at level ≥ 1 (level 0 is the root coordinator)", cfg.level)
		}
		defaultNodeID(&cfg)
	default:
		return cfg, fmt.Errorf("unknown role %q (want standalone, worker, coordinator or aggregator)", cfg.role)
	}
	// Cross-role flags that would otherwise be silently ignored.
	if cfg.role != "aggregator" {
		if cfg.parentURL != "" {
			return cfg, fmt.Errorf("-parent is only meaningful with -role aggregator (role is %q)", cfg.role)
		}
		if cfg.level != 0 {
			return cfg, fmt.Errorf("-level is only meaningful with -role aggregator (role is %q)", cfg.role)
		}
	}
	if cfg.role == "aggregator" && cfg.coordinatorURL != "" {
		return cfg, fmt.Errorf("aggregators ship to -parent, not -coordinator; drop -coordinator or use -role worker")
	}
	if cfg.ingestFormat != "json" && cfg.ingestFormat != "binary" {
		return cfg, fmt.Errorf("unknown ingest format %q (want json or binary)", cfg.ingestFormat)
	}
	if cfg.ingestFormat == "binary" && cfg.role != "worker" && cfg.role != "aggregator" {
		return cfg, fmt.Errorf("-ingest-format is only meaningful for roles that ship upstream (role is %q)", cfg.role)
	}
	// The keyed store lives on the mrl99 ingest surface (standalone and
	// worker roles); reject explicit keyed flags anywhere they would be
	// silently ignored.
	keyedFlagSet := ""
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "keys-max", "key-ttl", "key-shards", "window", "window-epochs":
			keyedFlagSet = "-" + f.Name
		}
	})
	if keyedFlagSet != "" {
		if cfg.role != "standalone" && cfg.role != "worker" {
			return cfg, fmt.Errorf("%s is only meaningful for roles with an ingest surface (role is %q)", keyedFlagSet, cfg.role)
		}
		if cfg.engine != engine.MRL99 {
			return cfg, fmt.Errorf("%s requires -engine mrl99 (engine servers have no keyed store)", keyedFlagSet)
		}
	}
	if cfg.keysMax < 1 {
		return cfg, fmt.Errorf("-keys-max %d invalid: the keyed store needs a positive key cap", cfg.keysMax)
	}
	if cfg.keyTTL < 0 {
		return cfg, fmt.Errorf("-key-ttl %s invalid: want a non-negative duration", cfg.keyTTL)
	}
	if cfg.keyShards < 0 || (cfg.keyShards != 0 && cfg.keyShards&(cfg.keyShards-1) != 0) {
		return cfg, fmt.Errorf("-key-shards %d invalid: want a power of two (or 0 for the default)", cfg.keyShards)
	}
	if cfg.window < 0 {
		return cfg, fmt.Errorf("-window %s invalid: want a non-negative duration", cfg.window)
	}
	if cfg.windowEpochs < 0 {
		return cfg, fmt.Errorf("-window-epochs %d invalid: want a non-negative epoch count", cfg.windowEpochs)
	}
	if cfg.windowEpochs > 0 && cfg.window == 0 {
		return cfg, fmt.Errorf("-window-epochs %d without -window: the epoch count divides the window span", cfg.windowEpochs)
	}
	return cfg, nil
}

// defaultNodeID fills workerID for the roles that identify themselves to a
// parent; (id, epoch) is the parent's dedup key, so it should be stable.
func defaultNodeID(cfg *config) {
	if cfg.workerID != "" {
		return
	}
	host, err := os.Hostname()
	if err != nil {
		host = cfg.role
	}
	cfg.workerID = host + cfg.addr
}

// service bundles a role's HTTP surface with its background loop. run
// blocks until ctx is cancelled and returns only after the role's final
// act — a worker's tail shipment, a coordinator's last checkpoint.
type service struct {
	handler http.Handler
	run     func(ctx context.Context)
	banner  string
	// ingest is the role's httpapi surface, set by every role that owns
	// one. newService keys housekeeping (the keyed TTL sweeper) off this
	// field after the role switch, so a role can't forget to wire it —
	// the PR 10 audit found the sweep wrapped per-case, which every
	// ingest case happened to do, but nothing enforced it.
	ingest *httpapi.Server
}

// newIngestServer builds the ingest-surface HTTP server for the selected
// engine: the sharded concurrent sketch for mrl99, a guarded engine
// otherwise.
func newIngestServer(cfg config, logger *slog.Logger) (*httpapi.Server, error) {
	var srv *httpapi.Server
	var err error
	if cfg.engine == engine.MRL99 {
		srv, err = httpapi.New(cfg.eps, cfg.delta, cfg.shards, quantile.WithSeed(cfg.seed))
		if err == nil {
			err = srv.SetKeyed(httpapi.KeyedConfig{
				MaxKeys:      cfg.keysMax,
				TTL:          cfg.keyTTL,
				Shards:       cfg.keyShards,
				Seed:         cfg.seed,
				Window:       cfg.window,
				WindowEpochs: cfg.windowEpochs,
			})
		}
	} else {
		var e engine.Engine
		if e, err = engine.New(cfg.engine, cfg.eps, cfg.delta, cfg.seed); err == nil {
			srv, err = httpapi.NewEngine(engine.Guard(e))
		}
	}
	if err != nil {
		return nil, err
	}
	srv.SetMaxBodyBytes(cfg.maxBodyBytes)
	srv.SetLogger(logger)
	return srv, nil
}

// keyedBanner describes the ingest surface's keyed store, if it has one.
func keyedBanner(cfg config, srv *httpapi.Server) string {
	if srv.Keyed() == nil {
		return ""
	}
	b := fmt.Sprintf(", keyed: max %d keys", cfg.keysMax)
	if cfg.keyTTL > 0 {
		b += fmt.Sprintf(" ttl %s", cfg.keyTTL)
	}
	if k := srv.Keyed(); k.Windowed() {
		b += fmt.Sprintf(" window %s (%d×%s)", k.WindowSpan(), k.WindowEpochs(), k.WindowWidth())
	}
	return b
}

// runWithKeyedSweep wraps a role's background loop with a housekeeping
// ticker that evicts idle keys, so TTL-bounded stores release memory even
// when the expired keys are never touched again. Applied centrally by
// newService to any service with an ingest surface — individual role
// cases must not wrap their own run.
func runWithKeyedSweep(run func(ctx context.Context), cfg config, srv *httpapi.Server, logger *slog.Logger) func(ctx context.Context) {
	if srv == nil || srv.Keyed() == nil || cfg.keyTTL <= 0 {
		return run
	}
	interval := max(min(cfg.keyTTL/2, time.Minute), time.Second)
	return func(ctx context.Context) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n := srv.Keyed().SweepExpired(); n > 0 {
						logger.Debug("keyed TTL sweep", "evicted", n)
					}
				}
			}
		}()
		run(ctx)
		<-done
	}
}

func newService(cfg config, logger *slog.Logger) (*service, error) {
	svc, err := newRoleService(cfg, logger)
	if err != nil {
		return nil, err
	}
	// Housekeeping that every ingest-surface role needs, applied once so
	// role cases can't drift: the keyed TTL sweeper keeps idle keys from
	// pinning memory when no request ever touches them again.
	svc.run = runWithKeyedSweep(svc.run, cfg, svc.ingest, logger)
	return svc, nil
}

func newRoleService(cfg config, logger *slog.Logger) (*service, error) {
	switch cfg.role {
	case "standalone":
		srv, err := newIngestServer(cfg, logger)
		if err != nil {
			return nil, err
		}
		return &service{
			handler: srv.Handler(),
			run:     func(ctx context.Context) { <-ctx.Done() },
			ingest:  srv,
			banner: fmt.Sprintf("standalone (engine=%s eps=%g delta=%g%s)",
				cfg.engine, cfg.eps, cfg.delta, keyedBanner(cfg, srv)),
		}, nil

	case "worker":
		srv, err := newIngestServer(cfg, logger)
		if err != nil {
			return nil, err
		}
		wcfg := cluster.WorkerConfig{
			ID:             cfg.workerID,
			CoordinatorURL: cfg.coordinatorURL,
			ShipInterval:   cfg.shipInterval,
			BinaryShip:     cfg.ingestFormat == "binary",
			Logger:         logger,
			// Shipping counters land on the ingest surface's registry, so
			// the worker's GET /metrics covers both.
			Registry: srv.Registry(),
		}
		var w *cluster.Worker
		if cfg.engine == engine.MRL99 {
			w, err = cluster.NewWorker(srv.Sketch(), wcfg)
		} else {
			w, err = cluster.NewEngineWorker(srv.Engine(), wcfg)
		}
		if err != nil {
			return nil, err
		}
		return &service{
			handler: srv.Handler(),
			run:     w.Run,
			ingest:  srv,
			banner: fmt.Sprintf("worker %q shipping %s to %s every %s (engine=%s eps=%g delta=%g%s)",
				cfg.workerID, cfg.ingestFormat, cfg.coordinatorURL, cfg.shipInterval, cfg.engine, cfg.eps, cfg.delta,
				keyedBanner(cfg, srv)),
		}, nil

	case "coordinator":
		coord, err := cluster.NewCoordinator(cluster.CoordinatorConfig{
			Eps:                cfg.eps,
			Delta:              cfg.delta,
			Engine:             cfg.engine,
			Seed:               cfg.seed,
			CheckpointPath:     cfg.checkpoint,
			CheckpointInterval: cfg.checkpointInterval,
			MaxBodyBytes:       cfg.maxBodyBytes,
			Logger:             logger,
		})
		if err != nil {
			return nil, err
		}
		banner := fmt.Sprintf("coordinator (engine=%s eps=%g delta=%g", cfg.engine, cfg.eps, cfg.delta)
		if cfg.checkpoint != "" {
			banner += fmt.Sprintf(", checkpointing to %s every %s", cfg.checkpoint, cfg.checkpointInterval)
		}
		return &service{handler: coord.Handler(), run: coord.Run, banner: banner + ")"}, nil

	case "aggregator":
		a, err := agg.New(agg.Config{
			ID:                 cfg.workerID,
			Level:              cfg.level,
			Eps:                cfg.eps,
			Delta:              cfg.delta,
			Engine:             cfg.engine,
			ParentURL:          cfg.parentURL,
			ShipInterval:       cfg.shipInterval,
			BinaryShip:         cfg.ingestFormat == "binary",
			Seed:               cfg.seed,
			CheckpointPath:     cfg.checkpoint,
			CheckpointInterval: cfg.checkpointInterval,
			MaxBodyBytes:       cfg.maxBodyBytes,
			Logger:             logger,
		})
		if err != nil {
			return nil, err
		}
		banner := fmt.Sprintf("aggregator %q level %d shipping %s to %s every %s (engine=%s eps=%g delta=%g",
			cfg.workerID, cfg.level, cfg.ingestFormat, cfg.parentURL, cfg.shipInterval, cfg.engine, cfg.eps, cfg.delta)
		if cfg.checkpoint != "" {
			banner += fmt.Sprintf(", checkpointing to %s every %s", cfg.checkpoint, cfg.checkpointInterval)
		}
		return &service{handler: a.Handler(), run: a.Run, banner: banner + ")"}, nil
	}
	return nil, fmt.Errorf("unknown role %q", cfg.role)
}

// debugMux returns the pprof surface served on -debug-addr. Handlers are
// registered explicitly instead of importing net/http/pprof for its
// DefaultServeMux side effect, so nothing profiling-related ever leaks
// onto the public mux.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startDebugServer serves pprof on addr until stop is called, returning
// the bound address (useful with a ":0" addr).
func startDebugServer(addr string, logger *slog.Logger) (stop func(), boundAddr string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("debug listener: %w", err)
	}
	ds := &http.Server{Handler: debugMux(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := ds.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Warn("debug server stopped", "err", err.Error())
		}
	}()
	logger.Info("pprof debug server listening", "addr", ln.Addr().String())
	return func() { _ = ds.Close() }, ln.Addr().String(), nil
}

// serve runs the hardened HTTP server until ctx is cancelled, then drains:
// stop accepting, finish in-flight requests, and only then cancel the
// background loop so a coordinator's final checkpoint includes every
// acknowledged shipment.
func serve(ctx context.Context, cfg config, svc *service, logger *slog.Logger) error {
	hs := &http.Server{
		Addr:              cfg.addr,
		Handler:           svc.handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       5 * time.Minute,
	}

	if cfg.debugAddr != "" {
		stopDebug, _, err := startDebugServer(cfg.debugAddr, logger)
		if err != nil {
			return err
		}
		defer stopDebug()
	}

	bgCtx, bgCancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		svc.run(bgCtx)
	}()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("quantiled listening", "role", cfg.role, "addr", cfg.addr)

	var serveErr error
	select {
	case serveErr = <-errc:
		// Listener failed; fall through to stop the background loop.
	case <-ctx.Done():
		logger.Info("signal received, draining")
		shCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		if err := hs.Shutdown(shCtx); err != nil {
			logger.Warn("shutdown", "err", err.Error())
		}
		cancel()
	}
	bgCancel()
	wg.Wait()
	if serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
		return serveErr
	}
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:], os.Stderr)
	if err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintf(os.Stderr, "quantiled: %v\n", err)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, cfg.logFormat, cfg.logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quantiled: %v\n", err)
		os.Exit(2)
	}
	svc, err := newService(cfg, logger)
	if err != nil {
		logger.Error("startup failed", "err", err.Error())
		os.Exit(1)
	}
	logger.Info("starting", "banner", svc.banner)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, cfg, svc, logger); err != nil {
		logger.Error("serve failed", "err", err.Error())
		os.Exit(1)
	}
}
