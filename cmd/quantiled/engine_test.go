package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseFlagsEngine(t *testing.T) {
	cfg, err := parseFlags([]string{"-engine", " KLL "}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.engine != "kll" {
		t.Fatalf("engine %q, want kll", cfg.engine)
	}
	if _, err := parseFlags([]string{"-engine", "tdigest"}, io.Discard); err == nil {
		t.Fatal("accepted an unknown engine")
	}
}

// TestEngineWorkerCoordinatorServices wires a -engine kll worker to a
// -engine kll coordinator exactly as main would: ingest over HTTP at the
// worker, drain, and every element must be counted once at the root.
func TestEngineWorkerCoordinatorServices(t *testing.T) {
	ccfg, err := parseFlags([]string{"-role", "coordinator", "-engine", "kll", "-eps", "0.02", "-delta", "1e-3"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	csvc, err := newService(ccfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(csvc.handler)
	defer cs.Close()

	wcfg, err := parseFlags([]string{
		"-role", "worker", "-engine", "kll", "-coordinator", cs.URL,
		"-worker-id", "w-kll", "-eps", "0.02", "-delta", "1e-3",
		"-ship-interval", "20ms",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	wsvc, err := newService(wcfg, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	ws := httptest.NewServer(wsvc.handler)
	defer ws.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		wsvc.run(ctx)
		close(done)
	}()

	var feed strings.Builder
	for i := 1; i <= 5000; i++ {
		feed.WriteString("7 ")
	}
	resp, err := http.Post(ws.URL+"/add", "text/plain", strings.NewReader(feed.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("worker loop did not stop")
	}
	resp, err = http.Get(cs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"count":5000`) {
		t.Errorf("coordinator healthz after drain: %s", body)
	}
	resp, err = http.Get(cs.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stats), `"engine":"kll"`) {
		t.Errorf("coordinator stats missing engine tag: %s", stats)
	}
}
