package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/httpapi"
)

func TestRunLoadAgainstLiveServer(t *testing.T) {
	s, err := httpapi.New(0.02, 1e-3, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var out strings.Builder
	if err := runLoad(&out, srv.URL, 40_000, 1<<14, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "40000 values in 3 frames") {
		t.Fatalf("load report:\n%s", got)
	}
}

func TestRunLoadValidation(t *testing.T) {
	var out strings.Builder
	if err := runLoad(&out, "", 100, 10, false); err == nil {
		t.Error("missing -target accepted")
	}
	if err := runLoad(&out, "http://x", 0, 10, false); err == nil {
		t.Error("zero -load-elems accepted")
	}
}
