package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"repro/internal/codec"
	"repro/internal/rng"
	"repro/internal/stream"
)

// runKeyedLoad is the multi-tenant load driver: it replays a seeded
// heavy-tailed (Zipf) key distribution against a live quantiled server's
// POST /v1/ingest/keyed, then measures per-key query latency on the same
// key distribution. Like runLoad it needs a running server and is never
// part of the default sweep:
//
//	qbench -target http://localhost:8080 keyedload
//
// The Zipf skew means a handful of hot keys absorb most frames — the
// regime the keyed store's per-entry view cache and zero-alloc hot path
// are built for — while the tail exercises insert/evict churn.
func runKeyedLoad(w io.Writer, target string, totalElems, frameElems, keys, queries int, zipfS float64, quick bool) error {
	if target == "" {
		return fmt.Errorf("keyedload needs -target, the base URL of a running quantiled server")
	}
	if quick {
		totalElems = min(totalElems, 1<<18)
		queries = min(queries, 500)
	}
	if totalElems <= 0 || frameElems <= 0 {
		return fmt.Errorf("keyedload: -load-elems and -load-frame must be positive")
	}
	if keys <= 0 {
		return fmt.Errorf("keyedload: -load-keys must be positive")
	}
	if zipfS <= 1 {
		return fmt.Errorf("keyedload: -load-zipf must be > 1 (got %g)", zipfS)
	}
	if queries < 0 {
		return fmt.Errorf("keyedload: -load-queries must be non-negative")
	}
	frameElems = min(frameElems, codec.MaxIngestFrameElems)

	frames := (totalElems + frameElems - 1) / frameElems
	ranks := stream.Zipf(uint64(frames+queries), 7, zipfS, uint64(keys-1))
	rg := rng.New(1)
	vals := make([]float64, frameElems)
	buf := make([]byte, 0, keyedIngestHeaderRoom+8*frameElems)
	client := &http.Client{Timeout: 30 * time.Second}
	ingestURL := target + "/v1/ingest/keyed"

	// Ingest phase: one Zipf-drawn key per frame.
	var sent, requests int
	var wire int64
	start := time.Now()
	for sent < totalElems {
		rank, _ := ranks.Next()
		key := fmt.Sprintf("key-%04d", int(rank))
		n := min(frameElems, totalElems-sent)
		for i := 0; i < n; i++ {
			vals[i] = rg.Float64()
		}
		buf = codec.AppendKeyedIngestFrame(buf[:0], []byte(key), vals[:n])
		resp, err := client.Post(ingestURL, codec.KeyedIngestContentType, bytes.NewReader(buf))
		if err != nil {
			return fmt.Errorf("keyedload: request %d: %w", requests+1, err)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("keyedload: request %d: %s: %s", requests+1, resp.Status, bytes.TrimSpace(body))
		}
		var ack struct {
			Added int `json:"added"`
		}
		if err := json.Unmarshal(body, &ack); err != nil || ack.Added != n {
			return fmt.Errorf("keyedload: request %d acknowledged %d of %d values (%v)", requests+1, ack.Added, n, err)
		}
		sent += n
		requests++
		wire += int64(len(buf))
	}
	ingestElapsed := time.Since(start)

	perElem := float64(ingestElapsed.Nanoseconds()) / float64(sent)
	mbps := float64(wire) / ingestElapsed.Seconds() / (1 << 20)
	fmt.Fprintf(w, "keyedload: %d values in %d frames (zipf s=%g over %d keys) to %s\n",
		sent, requests, zipfS, keys, ingestURL)
	fmt.Fprintf(w, "keyedload: ingest %.2fs wall, %.1f ns/elem end-to-end, %.1f MiB/s on the wire\n",
		ingestElapsed.Seconds(), perElem, mbps)

	// Query phase: per-key quantile lookups on the same key distribution.
	// Hot keys hit the server's cached views; evicted tail keys come back
	// 404, which counts as served (the store is working as configured).
	if queries > 0 {
		lat := make([]time.Duration, 0, queries)
		var misses int
		for i := 0; i < queries; i++ {
			rank, _ := ranks.Next()
			url := fmt.Sprintf("%s/quantile?key=key-%04d&phi=0.99", target, int(rank))
			q0 := time.Now()
			resp, err := client.Get(url)
			if err != nil {
				return fmt.Errorf("keyedload: query %d: %w", i+1, err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lat = append(lat, time.Since(q0))
			switch resp.StatusCode {
			case http.StatusOK:
			case http.StatusNotFound:
				misses++
			default:
				return fmt.Errorf("keyedload: query %d: %s", i+1, resp.Status)
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Fprintf(w, "keyedload: %d queries (%d evicted-key misses), p50 %s, p99 %s, p999 %s\n",
			queries, misses, latPct(lat, 500), latPct(lat, 990), latPct(lat, 999))
	}

	// Occupancy report from the server's own ledger.
	resp, err := client.Get(target + "/stats")
	if err != nil {
		return fmt.Errorf("keyedload: stats: %w", err)
	}
	defer resp.Body.Close()
	var st struct {
		Keyed *struct {
			Keys       int    `json:"keys"`
			Created    int    `json:"created"`
			EvictedLRU int    `json:"evicted_lru"`
			EvictedTTL int    `json:"evicted_ttl"`
			Rejected   int    `json:"rejected"`
			TotalCount uint64 `json:"total_count"`
			MemBound   int    `json:"memory_bound_elements"`
		} `json:"keyed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("keyedload: stats: %w", err)
	}
	if st.Keyed == nil {
		return fmt.Errorf("keyedload: server reports no keyed store (start quantiled with -keys-max)")
	}
	fmt.Fprintf(w, "keyedload: server holds %d keys (%d created, %d lru-evicted, %d ttl-evicted, %d rejected), %d values total, memory bound %d elements\n",
		st.Keyed.Keys, st.Keyed.Created, st.Keyed.EvictedLRU, st.Keyed.EvictedTTL,
		st.Keyed.Rejected, st.Keyed.TotalCount, st.Keyed.MemBound)
	return nil
}

// keyedIngestHeaderRoom over-reserves for the frame header, key, and CRC so
// the reusable encode buffer never regrows for key-%04d keys.
const keyedIngestHeaderRoom = 64

// latPct indexes a sorted latency slice at the given permille rank.
func latPct(sorted []time.Duration, permille int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * permille / 1000
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
