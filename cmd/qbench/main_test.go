package main

import (
	"strings"
	"testing"

	"repro/internal/perf"
)

// TestEveryExperimentRuns exercises the full dispatcher in quick mode and
// checks each experiment produces its titled output.
func TestEveryExperimentRuns(t *testing.T) {
	wantTitle := map[string]string{
		"table1":     "Table 1",
		"table2":     "Table 2",
		"fig4":       "Figure 4",
		"fig5":       "Figure 5",
		"trees":      "Figures 2-3",
		"accuracy":   "E-ACC",
		"extreme":    "E-EXT",
		"parallel":   "E-PAR",
		"reservoir":  "E-RES",
		"delta":      "E-DELTA",
		"ablation":   "E-ABL",
		"throughput": "E-THR",
		"perf":       "E-PERF",
	}
	for _, name := range experimentOrder {
		name := name
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			var err error
			if name == "perf" {
				// perf has its own dispatcher; a tiny stream keeps the
				// smoke run fast (1 rep is the self-timed minimum).
				err = runPerf(&out, true, "4096", "", "", "", 0.25)
			} else {
				err = run(&out, name, true)
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if want := wantTitle[name]; want == "" || !strings.Contains(out.String(), want) {
				t.Errorf("%s output missing %q", name, want)
			}
		})
	}
}

func TestParseBenchN(t *testing.T) {
	var cfg perf.Config
	if err := parseBenchN("1024", &cfg); err != nil || cfg.N != 1024 {
		t.Fatalf("plain size: %v %+v", err, cfg)
	}
	cfg = perf.Config{}
	if err := parseBenchN("ingest=2048,engine=512", &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.FamilyN[perf.FamilyIngest] != 2048 || cfg.FamilyN[perf.FamilyEngine] != 512 {
		t.Fatalf("family sizes: %+v", cfg.FamilyN)
	}
	for spec, wantInErr := range map[string]string{
		"shard=64":  `"shard"`, // unknown family, named
		"ingest=x":  `"ingest"`,
		"ingest=-1": `"ingest"`,
		"-5":        "-5",
	} {
		if err := parseBenchN(spec, &perf.Config{}); err == nil || !strings.Contains(err.Error(), wantInErr) {
			t.Errorf("parseBenchN(%q) = %v, want error mentioning %s", spec, err, wantInErr)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "nope", false); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestChartsIncluded(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "fig4", true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "y: memory (elements)") {
		t.Error("fig4 output missing ASCII chart")
	}
	out.Reset()
	if err := run(&out, "trees", true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "root: Output") {
		t.Error("trees output missing diagram")
	}
}
