package main

import (
	"strings"
	"testing"
)

// TestEveryExperimentRuns exercises the full dispatcher in quick mode and
// checks each experiment produces its titled output.
func TestEveryExperimentRuns(t *testing.T) {
	wantTitle := map[string]string{
		"table1":     "Table 1",
		"table2":     "Table 2",
		"fig4":       "Figure 4",
		"fig5":       "Figure 5",
		"trees":      "Figures 2-3",
		"accuracy":   "E-ACC",
		"extreme":    "E-EXT",
		"parallel":   "E-PAR",
		"reservoir":  "E-RES",
		"delta":      "E-DELTA",
		"ablation":   "E-ABL",
		"throughput": "E-THR",
		"perf":       "E-PERF",
	}
	for _, name := range experimentOrder {
		name := name
		t.Run(name, func(t *testing.T) {
			var out strings.Builder
			var err error
			if name == "perf" {
				// perf has its own dispatcher; a tiny stream keeps the
				// smoke run fast (1 rep is the self-timed minimum).
				err = runPerf(&out, true, 1<<12, "", "", 0.25)
			} else {
				err = run(&out, name, true)
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if want := wantTitle[name]; want == "" || !strings.Contains(out.String(), want) {
				t.Errorf("%s output missing %q", name, want)
			}
		})
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "nope", false); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestChartsIncluded(t *testing.T) {
	var out strings.Builder
	if err := run(&out, "fig4", true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "y: memory (elements)") {
		t.Error("fig4 output missing ASCII chart")
	}
	out.Reset()
	if err := run(&out, "trees", true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "root: Output") {
		t.Error("trees output missing diagram")
	}
}
