package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/codec"
	"repro/internal/rng"
)

// runLoad is the slab load driver: it pushes binary ingest frames at a
// live quantiled server's POST /v1/ingest and reports the achieved wire
// throughput. Unlike the other experiments it needs a running server, so
// it is never part of the default experiment sweep — invoke it by name:
//
//	qbench -target http://localhost:8080 load
func runLoad(w io.Writer, target string, totalElems, frameElems int, quick bool) error {
	if target == "" {
		return fmt.Errorf("load needs -target, the base URL of a running quantiled server")
	}
	if quick {
		totalElems = min(totalElems, 1<<18)
	}
	if totalElems <= 0 || frameElems <= 0 {
		return fmt.Errorf("load: -load-elems and -load-frame must be positive")
	}
	frameElems = min(frameElems, codec.MaxIngestFrameElems)

	// One frame's worth of deterministic uniform values, re-encoded per
	// request from a reusable buffer so the driver itself never allocates
	// in steady state.
	rg := rng.New(1)
	vals := make([]float64, frameElems)
	buf := make([]byte, 0, 9+8*frameElems+4)
	client := &http.Client{Timeout: 30 * time.Second}
	url := target + "/v1/ingest"

	var sent, requests int
	var wire int64
	start := time.Now()
	for sent < totalElems {
		n := min(frameElems, totalElems-sent)
		for i := 0; i < n; i++ {
			vals[i] = rg.Float64()
		}
		buf = codec.AppendIngestFrame(buf[:0], vals[:n])
		resp, err := client.Post(url, codec.IngestContentType, bytes.NewReader(buf))
		if err != nil {
			return fmt.Errorf("load: request %d: %w", requests+1, err)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("load: request %d: %s: %s", requests+1, resp.Status, bytes.TrimSpace(body))
		}
		var ack struct {
			Added int `json:"added"`
		}
		if err := json.Unmarshal(body, &ack); err != nil || ack.Added != n {
			return fmt.Errorf("load: request %d acknowledged %d of %d values (%v)", requests+1, ack.Added, n, err)
		}
		sent += n
		requests++
		wire += int64(len(buf))
	}
	elapsed := time.Since(start)

	perElem := float64(elapsed.Nanoseconds()) / float64(sent)
	mbps := float64(wire) / elapsed.Seconds() / (1 << 20)
	fmt.Fprintf(w, "load: %d values in %d frames to %s\n", sent, requests, url)
	fmt.Fprintf(w, "load: %.2fs wall, %.1f ns/elem end-to-end, %.1f MiB/s on the wire\n",
		elapsed.Seconds(), perElem, mbps)
	return nil
}
