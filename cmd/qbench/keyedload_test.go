package main

import (
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	quantile "repro"
	"repro/httpapi"
)

func TestRunKeyedLoadAgainstLiveServer(t *testing.T) {
	s, err := httpapi.New(0.02, 1e-3, 2, quantile.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	// A cap under the number of distinct keys the seeded Zipf stream
	// actually draws forces the LRU to work for a living: 59 ingest frames
	// at s=1.3 touch 25 distinct keys, so a total capacity of 16
	// (4 shards × ceil(16/4)) guarantees evictions by pigeonhole no matter
	// how the per-process shard hash spreads them.
	if err := s.SetKeyed(httpapi.KeyedConfig{MaxKeys: 16, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	var out strings.Builder
	if err := runKeyedLoad(&out, srv.URL, 60_000, 1<<10, 256, 200, 1.3, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "60000 values in 59 frames") {
		t.Fatalf("keyedload report:\n%s", got)
	}
	if !strings.Contains(got, "200 queries") || !strings.Contains(got, "p999") {
		t.Fatalf("missing query latency line:\n%s", got)
	}
	m := regexp.MustCompile(`holds (\d+) keys \((\d+) created, (\d+) lru-evicted`).FindStringSubmatch(got)
	if m == nil {
		t.Fatalf("missing occupancy line:\n%s", got)
	}
	if m[1] == "0" || m[3] == "0" {
		t.Fatalf("expected bounded occupancy with evictions, got keys=%s evicted=%s:\n%s", m[1], m[3], got)
	}
	st := s.Keyed().Stats()
	if st.Keys > 4*4 { // Shards * ceil(MaxKeys/Shards)
		t.Fatalf("occupancy %d exceeds the configured bound", st.Keys)
	}
}

func TestRunKeyedLoadValidation(t *testing.T) {
	var out strings.Builder
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"no target", runKeyedLoad(&out, "", 100, 10, 4, 0, 1.3, false)},
		{"zero elems", runKeyedLoad(&out, "http://x", 0, 10, 4, 0, 1.3, false)},
		{"zero keys", runKeyedLoad(&out, "http://x", 100, 10, 0, 0, 1.3, false)},
		{"flat zipf", runKeyedLoad(&out, "http://x", 100, 10, 4, 0, 1.0, false)},
		{"negative queries", runKeyedLoad(&out, "http://x", 100, 10, 4, -1, 1.3, false)},
	} {
		if tc.err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
