// Command qbench regenerates every table and figure of the paper's
// evaluation, plus the repository's validation experiments. Run with no
// arguments for the full suite, or name individual experiments:
//
//	qbench table1 table2 fig4 fig5 trees accuracy extreme parallel reservoir ablation throughput
//
// The experiment implementations live in internal/experiments and are
// shared with the testing.B benchmark harness (bench_test.go), so the CLI
// and `go test -bench` report the same numbers.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/perf"
)

var experimentOrder = []string{
	"table1", "table2", "fig4", "fig5", "trees",
	"accuracy", "extreme", "parallel", "reservoir", "delta", "ablation", "throughput",
	"perf",
}

func main() {
	quick := flag.Bool("quick", false, "shrink stream sizes for a fast smoke run")
	jsonPath := flag.String("json", "", "perf: write the E-PERF report as JSON to this file")
	baselinePath := flag.String("baseline", "", "perf: compare against this baseline JSON and fail on regression")
	tolerance := flag.Float64("tolerance", 0.25, "perf: allowed ns/elem regression fraction vs the baseline")
	benchN := flag.String("bench-n", "", "perf: per-op stream size — one number for every row family, or family=N pairs like ingest=1048576,engine=262144 (empty selects the default; -quick shrinks it)")
	engines := flag.String("engine", "", "perf: comma-separated engines for the engine-* rows (mrl99, kll, gk; empty runs all)")
	target := flag.String("target", "", "load: base URL of a running quantiled server")
	loadElems := flag.Int("load-elems", 1<<22, "load: total values to push")
	loadFrame := flag.Int("load-frame", 1<<16, "load: values per slab frame")
	loadKeys := flag.Int("load-keys", 4096, "keyedload: distinct keys in the Zipf key space")
	loadZipf := flag.Float64("load-zipf", 1.3, "keyedload: Zipf skew s (>1) of the key distribution")
	loadQueries := flag.Int("load-queries", 2000, "keyedload: per-key quantile queries after ingest")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qbench [-quick] [-json file] [-baseline file] [-tolerance frac] [-bench-n n|family=n,...] [-engine e,...] [experiment ...]\nexperiments: %v\nload drivers (need -target, never in the default sweep):\n  qbench -target http://host:8080 load\n  qbench -target http://host:8080 keyedload\n", experimentOrder)
	}
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		names = experimentOrder
	}
	for _, name := range names {
		var err error
		if name == "perf" {
			err = runPerf(os.Stdout, *quick, *benchN, *engines, *jsonPath, *baselinePath, *tolerance)
		} else if name == "load" {
			err = runLoad(os.Stdout, *target, *loadElems, *loadFrame, *quick)
		} else if name == "keyedload" {
			err = runKeyedLoad(os.Stdout, *target, *loadElems, *loadFrame, *loadKeys, *loadQueries, *loadZipf, *quick)
		} else {
			err = run(os.Stdout, name, *quick)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "qbench %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

// parseBenchN interprets -bench-n: a bare integer sizes every row family;
// family=N pairs size families independently. Family names are validated
// here so a typo fails before a multi-minute run, naming the known set.
func parseBenchN(spec string, cfg *perf.Config) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	if n, err := strconv.Atoi(spec); err == nil {
		if n <= 0 {
			return fmt.Errorf("-bench-n %d: stream size must be positive", n)
		}
		cfg.N = n
		cfg.FamilyN = nil // a bare number sizes every family, defaults included
		return nil
	}
	if cfg.FamilyN == nil {
		cfg.FamilyN = map[string]int{}
	}
	for _, part := range strings.Split(spec, ",") {
		fam, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return fmt.Errorf("-bench-n %q: want a number or family=N pairs (families: %v)", spec, perf.Families())
		}
		n, err := strconv.Atoi(val)
		if err != nil || n <= 0 {
			return fmt.Errorf("-bench-n: family %q needs a positive stream size, got %q", fam, val)
		}
		known := false
		for _, f := range perf.Families() {
			if fam == f {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("-bench-n: unknown row family %q (known: %v)", fam, perf.Families())
		}
		cfg.FamilyN[fam] = n
	}
	return nil
}

// runPerf executes the E-PERF harness, optionally persisting the JSON
// report and gating against a baseline (the CI bench-smoke job).
func runPerf(w io.Writer, quick bool, benchN, engines, jsonPath, baselinePath string, tolerance float64) error {
	cfg := perf.DefaultConfig()
	if quick {
		cfg.N = 1 << 17
		cfg.FamilyN[perf.FamilyBinary] = 1 << 17
	}
	if err := parseBenchN(benchN, &cfg); err != nil {
		return err
	}
	if engines != "" {
		for _, e := range strings.Split(engines, ",") {
			name, err := engine.Normalize(e)
			if err != nil {
				return fmt.Errorf("-engine: %w", err)
			}
			cfg.Engines = append(cfg.Engines, name)
		}
	}
	rep, err := perf.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, rep.Render())
	if jsonPath != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(jsonPath, blob, 0o644); err != nil {
			return err
		}
	}
	if baselinePath != "" {
		blob, err := os.ReadFile(baselinePath)
		if err != nil {
			return err
		}
		var base perf.Report
		if err := json.Unmarshal(blob, &base); err != nil {
			return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
		}
		if violations := perf.Compare(rep, base, tolerance); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "qbench perf: REGRESSION: %s\n", v)
			}
			return fmt.Errorf("%d row(s) regressed vs %s", len(violations), baselinePath)
		}
		fmt.Fprintf(w, "bench gate: all rows within %d%% of %s\n", int(tolerance*100), baselinePath)
	}
	return nil
}

func run(w io.Writer, name string, quick bool) error {
	switch name {
	case "table1":
		r, err := experiments.Table1()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
	case "table2":
		r, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
	case "fig4":
		r, err := experiments.Figure4()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
		fmt.Fprintln(w, r.Chart())
	case "fig5":
		r, err := experiments.Figure5()
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
		fmt.Fprintln(w, r.Chart())
	case "trees":
		r, err := experiments.Trees(5, 2, 40)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
		fmt.Fprintln(w, r.Diagram)
	case "accuracy":
		cfg := experiments.DefaultAccuracyConfig()
		if quick {
			cfg.N, cfg.Trials = 50_000, 1
		}
		r, err := experiments.Accuracy(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
	case "extreme":
		cfg := experiments.DefaultExtremeConfig()
		if quick {
			cfg.N, cfg.Trials = 50_000, 1
		}
		r, err := experiments.Extreme(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
	case "parallel":
		cfg := experiments.DefaultParallelConfig()
		if quick {
			cfg.PerWorker = 10_000
			cfg.WorkerCounts = []int{1, 2, 4}
		}
		r, err := experiments.Parallel(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
	case "reservoir":
		r, err := experiments.Reservoir(1e-3)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
	case "delta":
		cfg := experiments.DefaultDeltaConfig()
		if quick {
			cfg.N, cfg.Trials = 10_000, 20
		}
		r, err := experiments.Delta(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
	case "ablation":
		n := uint64(200_000)
		if quick {
			n = 30_000
		}
		p, err := experiments.PolicyAblation(6, 256, n, 0.01)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, p.Render())
		a, err := experiments.AlphaAblation(0.01, 1e-3)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, a.Render())
		o, err := experiments.OnsetAblation(0.01, 1e-3)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, o.Render())
	case "throughput":
		n := uint64(2_000_000)
		if quick {
			n = 200_000
		}
		r, err := experiments.Throughput(n)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, r.Render())
	default:
		return fmt.Errorf("unknown experiment %q (known: %v)", name, experimentOrder)
	}
	return nil
}
