package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	quantile "repro"
)

// writeShipment builds a worker sketch over [lo, hi) and writes its
// shipment to dir.
func writeShipment(t *testing.T, dir string, name string, lo, hi int, eps, delta float64) string {
	t.Helper()
	s, err := quantile.New[float64](eps, delta, quantile.WithSeed(uint64(lo)+1))
	if err != nil {
		t.Fatal(err)
	}
	for i := lo; i < hi; i++ {
		s.Add(float64(i))
	}
	blob, err := s.MarshalShipment(quantile.Float64Codec())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMergeqEndToEnd(t *testing.T) {
	const eps, delta = 0.01, 1e-4
	dir := t.TempDir()
	// Three workers covering [0, 300000) in disjoint ranges.
	f1 := writeShipment(t, dir, "a.q", 0, 100_000, eps, delta)
	f2 := writeShipment(t, dir, "b.q", 100_000, 200_000, eps, delta)
	f3 := writeShipment(t, dir, "c.q", 200_000, 300_000, eps, delta)

	var out strings.Builder
	err := run([]string{"-eps", fmt.Sprint(eps), "-delta", fmt.Sprint(delta), "-phi", "0.5,0.9", f1, f2, f3}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if !strings.Contains(lines[0], "merged 3 shipments, 300000 elements") {
		t.Errorf("header: %q", lines[0])
	}
	for _, line := range lines[1:] {
		parts := strings.Split(line, "\t")
		phi, _ := strconv.ParseFloat(parts[0], 64)
		v, _ := strconv.ParseFloat(parts[1], 64)
		if math.Abs(v-phi*300_000) > eps*300_000 {
			t.Errorf("phi=%v merged to %v, outside eps window", phi, v)
		}
	}
}

func TestMergeqErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("no files accepted")
	}
	if err := run([]string{"/does/not/exist.q"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	junk := filepath.Join(dir, "junk.q")
	os.WriteFile(junk, []byte("not a shipment"), 0o644)
	if err := run([]string{junk}, &out); err == nil {
		t.Error("junk file accepted")
	}
	if err := run([]string{"-phi", "2", junk}, &out); err == nil {
		t.Error("bad phi accepted")
	}
	if err := run([]string{"-eps", "0", junk}, &out); err == nil {
		t.Error("bad eps accepted")
	}
}

func TestMergeqMismatchedEps(t *testing.T) {
	dir := t.TempDir()
	// Worker at eps=0.05, merge at eps=0.01: buffer sizes differ, must be
	// detected rather than silently producing wrong answers.
	f := writeShipment(t, dir, "w.q", 0, 50_000, 0.05, 1e-3)
	var out strings.Builder
	if err := run([]string{"-eps", "0.01", "-delta", "1e-4", f}, &out); err == nil {
		t.Error("mismatched worker/merge eps accepted")
	}
}
