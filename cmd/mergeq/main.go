// Command mergeq merges worker shipments produced by `quantiles -ship` and
// answers quantile queries over the union of the workers' streams — the
// paper's Section 6 distributed pipeline as a shell workflow:
//
//	quantiles -eps 0.01 -ship east.q  < east.txt
//	quantiles -eps 0.01 -ship west.q  < west.txt
//	mergeq -eps 0.01 -phi 0.5,0.99 east.q west.q
//
// The -eps/-delta flags must match the values the workers used (they
// determine the shared buffer size k; a mismatch is detected and reported).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	quantile "repro"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "mergeq: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mergeq", flag.ContinueOnError)
	var (
		phiList = fs.String("phi", "0.01,0.05,0.25,0.5,0.75,0.95,0.99", "comma-separated quantiles in (0,1]")
		eps     = fs.Float64("eps", 0.01, "rank-error bound the workers were built with")
		delta   = fs.Float64("delta", 1e-4, "failure probability the workers were built with")
		seed    = fs.Uint64("seed", 1, "random seed for the merge coordinator")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("no shipment files given")
	}
	phis, err := parsePhis(*phiList)
	if err != nil {
		return err
	}
	plan, err := quantile.PlanUnknownN(*eps, *delta)
	if err != nil {
		return err
	}
	blobs := make([][]byte, 0, fs.NArg())
	for _, name := range fs.Args() {
		blob, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		blobs = append(blobs, blob)
	}
	m, err := quantile.MergeShipments(plan.K, plan.B, *seed, quantile.Float64Codec(), blobs...)
	if err != nil {
		return err
	}
	if m.Count() == 0 {
		return fmt.Errorf("shipments carry no data")
	}
	vals, err := m.Quantiles(phis)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# merged %d shipments, %d elements\n", len(blobs), m.Count())
	for i, phi := range phis {
		fmt.Fprintf(stdout, "%g\t%v\n", phi, vals[i])
	}
	return nil
}

func parsePhis(list string) ([]float64, error) {
	parts := strings.Split(list, ",")
	phis := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad quantile %q: %v", p, err)
		}
		if v <= 0 || v > 1 {
			return nil, fmt.Errorf("quantile %v out of (0,1]", v)
		}
		phis = append(phis, v)
	}
	if len(phis) == 0 {
		return nil, fmt.Errorf("no quantiles requested")
	}
	return phis, nil
}
