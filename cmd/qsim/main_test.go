package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/conformance"
)

func runQsim(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestDefaultReport(t *testing.T) {
	out := runQsim(t, "-eps", "0.01", "-delta", "1e-4")
	for _, want := range []string{"unknown-N algorithm", "Eq1", "Eq2", "Eq3", "[ok]", "known-N sampling plateau", "reservoir baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "VIOLATED") {
		t.Error("solver output flagged as violating its own constraints")
	}
}

func TestKnownNDecision(t *testing.T) {
	small := runQsim(t, "-eps", "0.01", "-delta", "1e-4", "-n", "1000")
	if !strings.Contains(small, "deterministic mode") {
		t.Errorf("small n should pick deterministic:\n%s", small)
	}
	big := runQsim(t, "-eps", "0.01", "-delta", "1e-4", "-n", "1e10")
	if !strings.Contains(big, "sampling (rate") {
		t.Errorf("big n should pick sampling:\n%s", big)
	}
}

func TestExtremeSizing(t *testing.T) {
	out := runQsim(t, "-eps", "0.002", "-delta", "1e-3", "-phi", "0.01")
	if !strings.Contains(out, "extreme estimator at phi=0.01") {
		t.Errorf("missing extreme line:\n%s", out)
	}
}

func TestExplainGoodAndBad(t *testing.T) {
	good := runQsim(t, "-eps", "0.01", "-delta", "1e-4", "-explain", "6,652,7")
	if strings.Contains(good, "does NOT satisfy") {
		t.Errorf("solver layout flagged invalid:\n%s", good)
	}
	bad := runQsim(t, "-eps", "0.01", "-delta", "1e-4", "-explain", "2,10,3")
	if !strings.Contains(bad, "VIOLATED") || !strings.Contains(bad, "does NOT satisfy") {
		t.Errorf("bad layout not flagged:\n%s", bad)
	}
}

func TestSweep(t *testing.T) {
	out := runQsim(t, "-sweep-eps", "-delta", "1e-3")
	if !strings.Contains(out, "0.001") || !strings.Contains(out, "reservoir") {
		t.Errorf("sweep output wrong:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 6 {
		t.Errorf("sweep should have header + 5 rows:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		{"-explain", "1,2"},
		{"-explain", "a,b,c"},
		{"-eps", "0"},
		{"-phi", "0.5", "-eps", "1e-9"}, // extreme sample size impractical
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestClusterConformanceMode(t *testing.T) {
	// A deliberately tiny grid: the full acceptance grid runs in
	// internal/conformance's TestAcceptanceGrid; here we verify the CLI
	// wiring, flag plumbing and JSON shape.
	out := runQsim(t, "-cluster", "-trials", "2", "-cluster-n", "1500",
		"-workers", "2", "-seed", "9", "-cluster-eps", "0.02", "-delta", "1e-3",
		"-heights", "2,3", "-aggregators", "2")
	var rep conformance.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("output is not a JSON report: %v\n%s", err, out)
	}
	if !rep.Pass {
		t.Fatalf("tiny grid failed conformance:\n%s", out)
	}
	if rep.Trials != 2 || rep.N != 1500 || rep.Workers != 2 || rep.Seed != 9 || rep.Delta != 1e-3 {
		t.Fatalf("flags not plumbed into report: %+v", rep)
	}
	if got, want := rep.Heights, []int{2, 3}; len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("heights not plumbed into report: %v", got)
	}
	// Height 2: 5 orders x 3 non-aggregator faults. Height 3 adds the
	// aggregator crash fault: 5 orders x 4 faults.
	if want := 5*3 + 5*4; len(rep.Scenarios) != want {
		t.Fatalf("got %d scenarios, want %d (heights 2,3 x 5 orders x faults x 1 eps)", len(rep.Scenarios), want)
	}
	sawH3 := false
	for _, sc := range rep.Scenarios {
		if sc.Eps != 0.02 {
			t.Fatalf("scenario eps %g, want 0.02", sc.Eps)
		}
		if sc.TailP <= 0 || sc.TailP > 1 {
			t.Fatalf("scenario h%d/%s/%s has tail_p %g outside (0, 1]", sc.Height, sc.Order, sc.Fault, sc.TailP)
		}
		if sc.Height == 3 {
			sawH3 = true
		}
	}
	if !sawH3 {
		t.Fatal("no height-3 scenarios in report")
	}
}

func TestClusterHeightsFlag(t *testing.T) {
	// A single-height run keeps the grid to exactly that height's scenarios.
	out := runQsim(t, "-cluster", "-trials", "1", "-cluster-n", "1000",
		"-workers", "2", "-seed", "3", "-cluster-eps", "0.05", "-delta", "1e-3",
		"-heights", "2")
	var rep conformance.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("output is not a JSON report: %v\n%s", err, out)
	}
	for _, sc := range rep.Scenarios {
		if sc.Height != 2 {
			t.Fatalf("-heights 2 produced a height-%d scenario", sc.Height)
		}
	}

	var sink strings.Builder
	for _, bad := range []string{"1", "4", "x", "2,,3"} {
		if err := run([]string{"-cluster", "-heights", bad}, &sink); err == nil {
			t.Errorf("-heights %q accepted", bad)
		}
	}
}

func TestClusterBadEpsList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-cluster", "-cluster-eps", "0.01,nope"}, &out); err == nil {
		t.Fatal("malformed -cluster-eps accepted")
	}
	if err := run([]string{"-cluster", "-cluster-eps", "1.5"}, &out); err == nil {
		t.Fatal("out-of-range -cluster-eps accepted")
	}
}
