package main

import (
	"strings"
	"testing"
)

func runQsim(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestDefaultReport(t *testing.T) {
	out := runQsim(t, "-eps", "0.01", "-delta", "1e-4")
	for _, want := range []string{"unknown-N algorithm", "Eq1", "Eq2", "Eq3", "[ok]", "known-N sampling plateau", "reservoir baseline"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "VIOLATED") {
		t.Error("solver output flagged as violating its own constraints")
	}
}

func TestKnownNDecision(t *testing.T) {
	small := runQsim(t, "-eps", "0.01", "-delta", "1e-4", "-n", "1000")
	if !strings.Contains(small, "deterministic mode") {
		t.Errorf("small n should pick deterministic:\n%s", small)
	}
	big := runQsim(t, "-eps", "0.01", "-delta", "1e-4", "-n", "1e10")
	if !strings.Contains(big, "sampling (rate") {
		t.Errorf("big n should pick sampling:\n%s", big)
	}
}

func TestExtremeSizing(t *testing.T) {
	out := runQsim(t, "-eps", "0.002", "-delta", "1e-3", "-phi", "0.01")
	if !strings.Contains(out, "extreme estimator at phi=0.01") {
		t.Errorf("missing extreme line:\n%s", out)
	}
}

func TestExplainGoodAndBad(t *testing.T) {
	good := runQsim(t, "-eps", "0.01", "-delta", "1e-4", "-explain", "6,652,7")
	if strings.Contains(good, "does NOT satisfy") {
		t.Errorf("solver layout flagged invalid:\n%s", good)
	}
	bad := runQsim(t, "-eps", "0.01", "-delta", "1e-4", "-explain", "2,10,3")
	if !strings.Contains(bad, "VIOLATED") || !strings.Contains(bad, "does NOT satisfy") {
		t.Errorf("bad layout not flagged:\n%s", bad)
	}
}

func TestSweep(t *testing.T) {
	out := runQsim(t, "-sweep-eps", "-delta", "1e-3")
	if !strings.Contains(out, "0.001") || !strings.Contains(out, "reservoir") {
		t.Errorf("sweep output wrong:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 6 {
		t.Errorf("sweep should have header + 5 rows:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	for _, args := range [][]string{
		{"-explain", "1,2"},
		{"-explain", "a,b,c"},
		{"-eps", "0"},
		{"-phi", "0.5", "-eps", "1e-9"}, // extreme sample size impractical
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
