// Command qsim explores the paper's parameter space: given ε and δ it
// prints the solved layouts for every algorithm variant, the constraint
// slack of the unknown-N solution, and optional sweeps. With -cluster it
// instead runs the deterministic cluster simulation's ε–δ conformance
// grid and emits a machine-readable JSON report.
//
//	qsim -eps 0.01 -delta 1e-4
//	qsim -eps 0.01 -delta 1e-4 -n 1e8          # known-N mode decision at N
//	qsim -eps 0.01 -delta 1e-4 -explain 6,652,7  # explain a hand-picked b,k,h
//	qsim -sweep-eps                              # memory across the ε grid
//	qsim -cluster -trials 100 -seed 1            # cluster conformance grid
//	qsim -cluster -heights 3 -aggregators 2      # 3-level tree scenarios only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/conformance"
	"repro/internal/extreme"
	"repro/internal/optimize"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "qsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("qsim", flag.ContinueOnError)
	var (
		eps      = fs.Float64("eps", 0.01, "rank-error bound")
		delta    = fs.Float64("delta", 1e-4, "failure probability")
		n        = fs.Float64("n", 0, "stream length for the known-N decision (0 = skip)")
		phi      = fs.Float64("phi", 0, "extreme quantile to size (0 = skip)")
		explainS = fs.String("explain", "", "explain a layout given as b,k,h")
		sweepEps = fs.Bool("sweep-eps", false, "print memory across the standard ε grid")

		cluster     = fs.Bool("cluster", false, "run the cluster-simulation conformance grid, print a JSON report")
		trials      = fs.Int("trials", 0, "with -cluster: seeded trials per scenario (0 = default 100)")
		clusterN    = fs.Int("cluster-n", 0, "with -cluster: elements per trial (0 = default 6000)")
		workers     = fs.Int("workers", 0, "with -cluster: simulated workers per trial (0 = default 3)")
		seed        = fs.Uint64("seed", 0, "with -cluster: base seed for the grid (0 = default 1)")
		clusterEps  = fs.String("cluster-eps", "", "with -cluster: comma-separated ε list (default 0.01,0.001)")
		heights     = fs.String("heights", "", "with -cluster: comma-separated tree heights, each 2 or 3 (default 2,3)")
		aggregators = fs.Int("aggregators", 0, "with -cluster: aggregator nodes in height-3 trees (0 = default 2)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cluster {
		cfg := conformance.Config{
			Delta:       *delta,
			Trials:      *trials,
			N:           *clusterN,
			Workers:     *workers,
			Seed:        *seed,
			Aggregators: *aggregators,
		}
		if *heights != "" {
			for _, part := range strings.Split(*heights, ",") {
				h, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil || h < 2 || h > 3 {
					return fmt.Errorf("-heights component %q: want 2 or 3", part)
				}
				cfg.Heights = append(cfg.Heights, h)
			}
		}
		if *clusterEps != "" {
			for _, part := range strings.Split(*clusterEps, ",") {
				e, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
				if err != nil || e <= 0 || e >= 1 {
					return fmt.Errorf("-cluster-eps component %q: want ε in (0, 1)", part)
				}
				cfg.Eps = append(cfg.Eps, e)
			}
		}
		rep, err := conformance.Run(cfg)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
		if !rep.Pass {
			return fmt.Errorf("conformance grid FAILED: %d failures in %d queries (see report)",
				rep.TotalFailures, rep.TotalQueries)
		}
		return nil
	}

	if *sweepEps {
		fmt.Fprintf(w, "%-8s %-14s %-14s %-14s\n", "eps", "unknown-N", "known-N", "reservoir")
		for _, e := range []float64{0.1, 0.05, 0.01, 0.005, 0.001} {
			u, err := optimize.UnknownN(e, *delta)
			if err != nil {
				return err
			}
			k, err := optimize.KnownNSampling(e, *delta)
			if err != nil {
				return err
			}
			r, err := optimize.ReservoirSize(e, *delta)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-8g %-14d %-14d %-14d\n", e, u.Memory, k.Memory, r)
		}
		return nil
	}

	if *explainS != "" {
		parts := strings.Split(*explainS, ",")
		if len(parts) != 3 {
			return fmt.Errorf("-explain wants b,k,h")
		}
		var bkh [3]int
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				return fmt.Errorf("-explain component %q: %v", p, err)
			}
			bkh[i] = v
		}
		rep := optimize.Explain(optimize.Params{B: bkh[0], K: bkh[1], H: bkh[2],
			Memory: uint64(bkh[0]) * uint64(bkh[1])}, *eps, *delta)
		fmt.Fprint(w, rep.String())
		if !rep.AllSatisfied() {
			fmt.Fprintln(w, "layout does NOT satisfy the guarantee at these eps/delta")
		}
		return nil
	}

	u, err := optimize.UnknownN(*eps, *delta)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "unknown-N algorithm (paper Sections 3-4):\n")
	fmt.Fprint(w, optimize.Explain(u, *eps, *delta).String())

	ks, err := optimize.KnownNSampling(*eps, *delta)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nknown-N sampling plateau [MRL98]: b=%d k=%d memory=%d (ratio unknown/known = %.2f)\n",
		ks.B, ks.K, ks.Memory, float64(u.Memory)/float64(ks.Memory))

	if *n > 0 {
		p, err := optimize.KnownN(*eps, *delta, uint64(*n))
		if err != nil {
			return err
		}
		mode := "deterministic"
		if p.Sampling {
			mode = fmt.Sprintf("sampling (rate %d)", p.Rate)
		}
		fmt.Fprintf(w, "known-N at N=%.3g: %s mode, b=%d k=%d memory=%d\n", *n, mode, p.B, p.K, p.Memory)
	}

	if r, err := optimize.ReservoirSize(*eps, *delta); err == nil {
		fmt.Fprintf(w, "reservoir baseline: %d elements (%.1fx the unknown-N algorithm)\n",
			r, float64(r)/float64(u.Memory))
	}

	if *phi > 0 {
		pl, err := extreme.Solve(*phi, *eps, *delta)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "extreme estimator at phi=%g: sample s=%d, retained k=%d (%.2f%% of unknown-N memory)\n",
			*phi, pl.S, pl.K, 100*float64(pl.K)/float64(u.Memory))
	}
	return nil
}
