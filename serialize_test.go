package quantile

import (
	"slices"
	"testing"

	"repro/internal/exact"
	"repro/internal/stream"
)

func TestCheckpointRestoreEquivalence(t *testing.T) {
	s, err := New[float64](0.02, 1e-3, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	data := stream.Collect(stream.Uniform(120_000, 9))
	half := len(data) / 2
	for _, v := range data[:half] {
		s.Add(v)
	}
	blob, err := s.Checkpoint(Float64Codec())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSketch[float64](blob, Float64Codec())
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epsilon() != 0.02 || restored.Delta() != 1e-3 {
		t.Errorf("metadata lost: eps=%v delta=%v", restored.Epsilon(), restored.Delta())
	}
	for _, v := range data[half:] {
		s.Add(v)
		restored.Add(v)
	}
	phis := []float64{0.1, 0.5, 0.9}
	a, _ := s.Quantiles(phis)
	b, _ := restored.Quantiles(phis)
	if !slices.Equal(a, b) {
		t.Errorf("checkpointed sketch diverged: %v vs %v", a, b)
	}
	for i, phi := range phis {
		if e := exact.RankError(data, b[i], phi, 0.02); e != 0 {
			t.Errorf("restored sketch phi=%v off by %d ranks", phi, e)
		}
	}
}

func TestCheckpointGarbageRejected(t *testing.T) {
	if _, err := RestoreSketch[float64](nil, Float64Codec()); err == nil {
		t.Error("nil blob accepted")
	}
	if _, err := RestoreSketch[float64]([]byte("not a sketch"), Float64Codec()); err == nil {
		t.Error("garbage blob accepted")
	}
}

func TestShipmentsMergeAcrossTheWire(t *testing.T) {
	const eps, delta = 0.05, 1e-3
	const per = 30_000
	var all []float64
	var blobs [][]byte
	var k, b int
	for w := 0; w < 4; w++ {
		s, err := New[float64](eps, delta, WithSeed(uint64(w)+1))
		if err != nil {
			t.Fatal(err)
		}
		chunk := stream.Collect(stream.Exponential(per, uint64(w)+10, 0.5))
		s.AddAll(chunk)
		all = append(all, chunk...)
		plan, _ := PlanUnknownN(eps, delta)
		k, b = plan.K, plan.B
		blob, err := s.MarshalShipment(Float64Codec())
		if err != nil {
			t.Fatal(err)
		}
		// Wire format must be small: a few buffers, not the data.
		if len(blob) > 64*1024 {
			t.Errorf("worker %d shipment is %d bytes", w, len(blob))
		}
		blobs = append(blobs, blob)
	}
	m, err := MergeShipments(k, b, 7, Float64Codec(), blobs...)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != uint64(len(all)) {
		t.Errorf("merged count %d want %d", m.Count(), len(all))
	}
	for _, phi := range []float64{0.25, 0.5, 0.75} {
		got, err := m.Quantile(phi)
		if err != nil {
			t.Fatal(err)
		}
		if e := exact.RankError(all, got, phi, eps); e != 0 {
			t.Errorf("wire-merged phi=%v off by %d ranks", phi, e)
		}
	}
}

func TestMergeShipmentsValidation(t *testing.T) {
	if _, err := MergeShipments(8, 4, 1, Float64Codec()); err == nil {
		t.Error("no shipments accepted")
	}
	if _, err := MergeShipments(8, 4, 1, Float64Codec(), []byte("junk")); err == nil {
		t.Error("junk shipment accepted")
	}
}

func TestKnownNCheckpointPublicAPI(t *testing.T) {
	const n = 60_000
	s, err := NewKnownN[float64](n, 0.05, 1e-3, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	data := stream.Collect(stream.Uniform(n, 22))
	half := len(data) / 2
	s.AddAll(data[:half])
	blob, err := s.Checkpoint(Float64Codec())
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreKnownN[float64](blob, Float64Codec())
	if err != nil {
		t.Fatal(err)
	}
	s.AddAll(data[half:])
	r.AddAll(data[half:])
	a, _ := s.Quantile(0.5)
	b, _ := r.Quantile(0.5)
	if a != b {
		t.Errorf("known-N checkpoint diverged: %v vs %v", a, b)
	}
	if e := exact.RankError(data, b, 0.5, 0.05); e != 0 {
		t.Errorf("restored known-N median off by %d ranks", e)
	}
	if r.Overflowed() {
		t.Error("overflow flagged spuriously")
	}
	if _, err := RestoreKnownN[float64]([]byte("zzz"), Float64Codec()); err == nil {
		t.Error("garbage accepted")
	}
}

func TestEquiDepthCheckpoint(t *testing.T) {
	h, err := NewEquiDepth[float64](8, 0.05, 1e-3, WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	data := stream.Collect(stream.Normal(60_000, 32, 10, 2))
	half := len(data) / 2
	for _, v := range data[:half] {
		h.Add(v)
	}
	blob, err := CheckpointEquiDepth(h, Float64Codec())
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreEquiDepth[float64](blob, Float64Codec())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range data[half:] {
		h.Add(v)
		r.Add(v)
	}
	a, err1 := h.Boundaries()
	b, err2 := r.Boundaries()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !slices.Equal(a, b) {
		t.Errorf("restored histogram boundaries diverge: %v vs %v", a, b)
	}
	// Buckets rely on the persisted min/max.
	ba, _ := h.Buckets()
	bb, _ := r.Buckets()
	if ba[0].Lo != bb[0].Lo || ba[len(ba)-1].Hi != bb[len(bb)-1].Hi {
		t.Error("restored histogram extremes diverge")
	}
	if _, err := RestoreEquiDepth[float64]([]byte("junk"), Float64Codec()); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCheckpointIntSketch(t *testing.T) {
	s, err := New[int](0.05, 1e-2, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20_000; i++ {
		s.Add(i % 1000)
	}
	blob, err := s.Checkpoint(IntCodec())
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSketch[int](blob, IntCodec())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := s.Median()
	b, _ := r.Median()
	if a != b {
		t.Errorf("int medians diverge: %d vs %d", a, b)
	}
}

func TestConcurrentShipAndReset(t *testing.T) {
	c, err := NewConcurrent[float64](0.02, 1e-3, 4, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	const n1, n2 = 40_000, 20_000
	for i := 0; i < n1; i++ {
		c.Add(float64(i))
	}
	blob1, count1, err := c.ShipAndReset(Float64Codec())
	if err != nil {
		t.Fatal(err)
	}
	if count1 != n1 {
		t.Fatalf("epoch 1 shipped %d elements, want %d", count1, n1)
	}
	if c.Count() != 0 {
		t.Fatalf("sketch holds %d elements after reset", c.Count())
	}
	for i := 0; i < n2; i++ {
		c.Add(float64(n1 + i))
	}
	blob2, count2, err := c.ShipAndReset(Float64Codec())
	if err != nil {
		t.Fatal(err)
	}
	if count2 != n2 {
		t.Fatalf("epoch 2 shipped %d elements, want %d", count2, n2)
	}

	// An idle epoch ships nothing.
	blob3, count3, err := c.ShipAndReset(Float64Codec())
	if err != nil {
		t.Fatal(err)
	}
	if blob3 != nil || count3 != 0 {
		t.Fatalf("idle epoch shipped blob=%v count=%d", blob3 != nil, count3)
	}

	// The two epochs merge into a summary of the full stream.
	plan, err := PlanUnknownN(0.02, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeShipments(plan.K, plan.B, 3, Float64Codec(), blob1, blob2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Count() != n1+n2 {
		t.Fatalf("merged count %d, want %d", m.Count(), n1+n2)
	}
	med, err := m.Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	exact := float64(n1+n2) / 2
	if diff := med - exact; diff < -0.05*float64(n1+n2) || diff > 0.05*float64(n1+n2) {
		t.Errorf("merged median %v too far from %v", med, exact)
	}
}

func TestConcurrentShardsAndLayout(t *testing.T) {
	c, err := NewConcurrent[float64](0.01, 1e-4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 3 {
		t.Errorf("Shards() = %d, want 3", c.Shards())
	}
	b, k, h := c.Layout()
	plan, _ := PlanUnknownN(0.01, 1e-4)
	if b != plan.B || k != plan.K || h != plan.H {
		t.Errorf("Layout() = (%d,%d,%d), want (%d,%d,%d)", b, k, h, plan.B, plan.K, plan.H)
	}
}
