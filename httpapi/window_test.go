package httpapi

import (
	"fmt"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	quantile "repro"
	"repro/internal/codec"
	"repro/internal/stream"
)

// testClock is a manually advanced clock shared with a windowed server.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Unix(1_700_000_000, 0)}
}
func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// newWindowedServer builds an MRL99 server whose keyed store rotates 30s
// epochs, 10 per ring (a 5m window), on a virtual clock.
func newWindowedServer(t *testing.T) (*Server, *httptest.Server, *testClock) {
	t.Helper()
	s, err := New(0.02, 1e-3, 4, quantile.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	clk := newTestClock()
	if err := s.SetKeyed(KeyedConfig{Window: 5 * time.Minute, WindowEpochs: 10, Seed: 9, Now: clk.Now}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, clk
}

func ingestKeyed(t *testing.T, url, key string, vals []float64) {
	t.Helper()
	body := codec.AppendKeyedIngestFrame(nil, []byte(key), vals)
	code, out := postBinary(t, url+"/v1/ingest/keyed", codec.KeyedIngestContentType, body)
	if code != 200 {
		t.Fatalf("keyed ingest status %d: %v", code, out)
	}
}

// TestWindowedQuantileEndpoint drives three epochs with shifted
// distributions through the wire path and checks window= answers track
// the in-window suffix while the unwindowed answer sees everything.
func TestWindowedQuantileEndpoint(t *testing.T) {
	_, ts, clk := newWindowedServer(t)

	// Epochs 0, 1, 2 carry values near 0, 100, 200 respectively.
	for ep := 0; ep < 3; ep++ {
		vals := stream.Collect(stream.Uniform(8000, uint64(60+ep)))
		for i := range vals {
			vals[i] += float64(100 * ep)
		}
		ingestKeyed(t, ts.URL, "svc", vals)
		if ep != 2 {
			clk.Advance(30 * time.Second)
		}
	}

	// window=30s covers only the newest epoch (values near 200).
	code, out := get(t, ts.URL+"/quantile?key=svc&window=30s&phi=0.5")
	if code != 200 {
		t.Fatalf("windowed quantile status %d: %v", code, out)
	}
	if out["key"].(string) != "svc" || out["window"].(string) != "30s" {
		t.Fatalf("windowed echo %v", out)
	}
	if med := out["0.5"].(float64); med < 200 || med > 201 {
		t.Errorf("30s-window median = %v, want ~200.5", med)
	}

	// window=90s covers all three epochs; the median sits in the middle one.
	code, out = get(t, ts.URL+"/quantile?key=svc&window=90s&phi=0.5")
	if code != 200 {
		t.Fatalf("windowed quantile status %d: %v", code, out)
	}
	if med := out["0.5"].(float64); med < 95 || med > 106 {
		t.Errorf("90s-window median = %v, want ~100.5", med)
	}

	// The unwindowed keyed answer matches the full stream too.
	code, out = get(t, ts.URL+"/quantile?key=svc&phi=0.5")
	if code != 200 {
		t.Fatal(code)
	}
	if med := out["0.5"].(float64); med < 95 || med > 106 {
		t.Errorf("all-time median = %v, want ~100.5", med)
	}

	// Windowed CDF: the newest epoch's values are all above 150, the
	// older two below it, so CDF(150) over 30s is 0 and over 90s is ~2/3.
	code, out = get(t, ts.URL+"/cdf?key=svc&window=30s&v=150")
	if code != 200 {
		t.Fatalf("windowed cdf status %d: %v", code, out)
	}
	if frac := out["cdf"].(float64); frac != 0 {
		t.Errorf("30s-window CDF(150) = %v, want 0", frac)
	}
	if out["window"].(string) != "30s" {
		t.Errorf("cdf windowed echo %v", out)
	}
	code, out = get(t, ts.URL+"/cdf?key=svc&window=90s&v=150")
	if code != 200 {
		t.Fatal(code)
	}
	if frac := out["cdf"].(float64); frac < 0.6 || frac > 0.73 {
		t.Errorf("90s-window CDF(150) = %v, want ~2/3", frac)
	}

	// Rotate two epochs with no ingest: a 30s window goes empty (409),
	// while the all-time sketch still answers.
	clk.Advance(time.Minute)
	if code, out := get(t, ts.URL+"/quantile?key=svc&window=30s"); code != 409 {
		t.Errorf("empty-window status %d: %v, want 409", code, out)
	}
	if code, _ := get(t, ts.URL+"/quantile?key=svc"); code != 200 {
		t.Errorf("all-time after idle status %d, want 200", code)
	}

	// /stats exposes the windowed block with live counters.
	code, out = get(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatal(code)
	}
	win := out["keyed"].(map[string]any)["window"].(map[string]any)
	if win["epochs"].(float64) != 10 || win["width_seconds"].(float64) != 30 || win["span_seconds"].(float64) != 300 {
		t.Errorf("stats window block %v", win)
	}
	if win["rotations"].(float64) == 0 || win["rebuilds"].(float64) == 0 {
		t.Errorf("stats window counters flat: %v", win)
	}
}

// TestWindowParamValidation exercises the strict duration validation and
// its interaction with key= and the store's configured span.
func TestWindowParamValidation(t *testing.T) {
	_, ts, _ := newWindowedServer(t)
	ingestKeyed(t, ts.URL, "svc", []float64{1, 2, 3})

	bad := []struct {
		query string
		code  int
	}{
		{"/quantile?key=svc&window=0s", 400},
		{"/quantile?key=svc&window=-3s", 400},
		{"/quantile?key=svc&window=5", 400},         // bare number
		{"/quantile?key=svc&window=abc", 400},       // unparsable
		{"/quantile?key=svc&window=5m1s", 400},      // beyond the 5m span (keyed.ErrWindowRange)
		{"/quantile?key=svc&window=999h", 400},      // far beyond
		{"/quantile?window=30s", 400},               // window without key
		{"/cdf?window=30s&v=1", 400},                // same on /cdf
		{"/quantile?key=ghost&window=30s", 404},     // unknown key still 404
		{"/cdf?key=svc&window=0s&v=1", 400},         // cdf duration checks
		{"/quantile?key=svc&window=30s&phi=0", 400}, // bad phi beats window routing
	}
	for _, tc := range bad {
		if code, out := get(t, ts.URL+tc.query); code != tc.code {
			t.Errorf("%s status %d: %v, want %d", tc.query, code, out, tc.code)
		}
	}

	// Full-span and sub-epoch durations are valid.
	for _, q := range []string{
		"/quantile?key=svc&window=5m",
		"/quantile?key=svc&window=1s", // rounds up to one epoch
		"/cdf?key=svc&window=5m&v=2",
	} {
		if code, out := get(t, ts.URL+q); code != 200 {
			t.Errorf("%s status %d: %v, want 200", q, code, out)
		}
	}

	// A server without windows rejects window= as 400 (ErrWindowDisabled).
	_, plain := newTestServer(t)
	if code, _ := post(t, plain.URL+"/add", "1\n"); code != 200 {
		t.Fatal("add")
	}
	ingestKeyed(t, plain.URL, "svc", []float64{1, 2, 3})
	if code, out := get(t, plain.URL+"/quantile?key=svc&window=30s"); code != 400 {
		t.Errorf("windowless server status %d: %v, want 400", code, out)
	}
	if msg := fmt.Sprint(getErr(t, plain.URL+"/quantile?key=svc&window=30s")); !strings.Contains(msg, "without time windows") {
		t.Errorf("windowless error %q", msg)
	}
}

func getErr(t *testing.T, url string) string {
	t.Helper()
	_, out := get(t, url)
	if s, ok := out["error"].(string); ok {
		return s
	}
	return ""
}

// FuzzWindowQuery fuzzes the windowed query surface with arbitrary
// window=, phi=, and key= strings: the handler must always answer with a
// well-formed status (never panic), 200 only for valid inputs.
func FuzzWindowQuery(f *testing.F) {
	s, err := New(0.05, 1e-3, 2, quantile.WithSeed(1))
	if err != nil {
		f.Fatal(err)
	}
	clk := newTestClock()
	if err := s.SetKeyed(KeyedConfig{Window: time.Minute, WindowEpochs: 4, Seed: 3, Now: clk.Now}); err != nil {
		f.Fatal(err)
	}
	if err := s.Keyed().AddAll("k", []float64{1, 2, 3, 4, 5}); err != nil {
		f.Fatal(err)
	}
	h := s.Handler()

	f.Add("30s", "0.5", "k")
	f.Add(" 5m", "0.9,0.99", "k")
	f.Add("-3s", "0", "")
	f.Add("+Inf", "NaN", "ghost")
	f.Add("9999999999999999999h", "1", "k")
	f.Add("1ns", " 0.5", "k")
	f.Fuzz(func(t *testing.T, window, phi, key string) {
		q := "/quantile?window=" + url.QueryEscape(window) + "&phi=" + url.QueryEscape(phi)
		if key != "" {
			q += "&key=" + url.QueryEscape(key)
		}
		req := httptest.NewRequest("GET", q, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		switch rec.Code {
		case 200, 400, 404, 409:
		default:
			t.Fatalf("GET %s -> unexpected status %d: %s", q, rec.Code, rec.Body.String())
		}
	})
}
