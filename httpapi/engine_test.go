package httpapi

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/engine"
)

func newEngineServer(t *testing.T, name string) (*Server, *httptest.Server) {
	t.Helper()
	e, err := engine.New(name, 0.02, 1e-3, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewEngine(engine.Guard(e))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestEngineServers drives the full HTTP surface against every engine: the
// same requests a dashboard would make must work regardless of which
// summary sits behind the mux.
func TestEngineServers(t *testing.T) {
	for _, name := range engine.Names() {
		t.Run(name, func(t *testing.T) {
			_, ts := newEngineServer(t, name)
			var body strings.Builder
			for i := 1; i <= 20_000; i++ {
				fmt.Fprintln(&body, i)
			}
			code, out := post(t, ts.URL+"/add", body.String())
			if code != http.StatusOK || out["added"].(float64) != 20_000 {
				t.Fatalf("add: %d %v", code, out)
			}
			code, out = get(t, ts.URL+"/quantile?phi=0.5,0.9")
			if code != http.StatusOK {
				t.Fatalf("quantile: %d %v", code, out)
			}
			if med := out["0.5"].(float64); math.Abs(med-10_000) > 800 {
				t.Errorf("median %v", med)
			}
			code, out = get(t, ts.URL+"/cdf?v=5000")
			if code != http.StatusOK || math.Abs(out["cdf"].(float64)-0.25) > 0.04 {
				t.Errorf("cdf: %d %v", code, out)
			}
			code, out = get(t, ts.URL+"/histogram?buckets=4")
			if code != http.StatusOK || out["rows"].(float64) != 20_000 {
				t.Errorf("histogram: %d %v", code, out)
			}
			code, out = get(t, ts.URL+"/stats")
			if code != http.StatusOK || out["engine"].(string) != name {
				t.Errorf("stats: %d %v", code, out)
			}
			if out["count"].(float64) != 20_000 {
				t.Errorf("stats count: %v", out["count"])
			}
		})
	}
}

// TestEngineServerMetrics: the engine server's scrape surface must report
// the element count it has consumed.
func TestEngineServerMetrics(t *testing.T) {
	_, ts := newEngineServer(t, engine.KLL)
	post(t, ts.URL+"/add", "1 2 3 4 5")
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(strings.Builder)
	if _, err := io.Copy(buf, resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sketch_elements_total 5") {
		t.Errorf("metrics missing element count:\n%s", buf.String())
	}
}
