package httpapi

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/stream"
)

// keyedBody builds a request body of keyed slab frames.
func keyedBody(frames map[string][]float64, order []string) []byte {
	var body []byte
	for _, key := range order {
		body = codec.AppendKeyedIngestFrame(body, []byte(key), frames[key])
	}
	return body
}

func TestKeyedIngestAndQuery(t *testing.T) {
	_, ts := newTestServer(t)

	// Three tenants with shifted uniform distributions.
	frames := map[string][]float64{}
	order := []string{"tenant-a", "tenant-b", "tenant-c"}
	for i, key := range order {
		vals := stream.Collect(stream.Uniform(20000, uint64(50+i)))
		for j := range vals {
			vals[j] += float64(100 * i)
		}
		frames[key] = vals
	}
	code, out := postBinary(t, ts.URL+"/v1/ingest/keyed", codec.KeyedIngestContentType, keyedBody(frames, order))
	if code != 200 {
		t.Fatalf("keyed ingest status %d: %v", code, out)
	}
	if out["added"].(float64) != 60000 || out["frames"].(float64) != 3 || out["keys"].(float64) != 3 {
		t.Fatalf("keyed ingest ack %v", out)
	}

	for i, key := range order {
		code, out := get(t, ts.URL+"/quantile?key="+key+"&phi=0.5")
		if code != 200 {
			t.Fatalf("keyed quantile status %d: %v", code, out)
		}
		want := float64(100*i) + 0.5
		got := out["0.5"].(float64)
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("key %s median = %v, want ~%v", key, got, want)
		}
		if out["key"].(string) != key {
			t.Errorf("echoed key %v, want %s", out["key"], key)
		}
		code, out = get(t, ts.URL+fmt.Sprintf("/cdf?key=%s&v=%v", key, want))
		if code != 200 {
			t.Fatalf("keyed cdf status %d: %v", code, out)
		}
		if frac := out["cdf"].(float64); frac < 0.45 || frac > 0.55 {
			t.Errorf("key %s CDF(median) = %v, want ~0.5", key, frac)
		}
	}

	// The flat (unkeyed) surface is untouched by keyed ingest.
	code, out = get(t, ts.URL+"/stats")
	if code != 200 {
		t.Fatal(code)
	}
	if out["count"].(float64) != 0 {
		t.Errorf("unkeyed count = %v after keyed-only ingest, want 0", out["count"])
	}
	ks := out["keyed"].(map[string]any)
	if ks["keys"].(float64) != 3 || ks["total_count"].(float64) != 60000 {
		t.Errorf("stats keyed block %v", ks)
	}
	if ks["memory_bound_elements"].(float64) != 3*ks["per_key_bound"].(float64) {
		t.Errorf("memory bound %v != 3 * per-key bound %v", ks["memory_bound_elements"], ks["per_key_bound"])
	}
}

func TestKeyedQueryErrors(t *testing.T) {
	_, ts := newTestServer(t)
	if code, out := get(t, ts.URL+"/quantile?key=ghost"); code != 404 {
		t.Errorf("unknown key quantile status %d: %v", code, out)
	} else if msg := out["error"].(string); !strings.Contains(msg, "key not found") {
		t.Errorf("404 error body %q", msg)
	}
	if code, _ := get(t, ts.URL+"/cdf?key=ghost&v=1"); code != 404 {
		t.Errorf("unknown key cdf status %d", code)
	}
	// Bad phi still beats key routing.
	if code, _ := get(t, ts.URL+"/quantile?key=ghost&phi=2"); code != 400 {
		t.Errorf("bad phi with key status %d, want 400", code)
	}
}

func TestKeyedIngestRejectsBadFrames(t *testing.T) {
	_, ts := newTestServer(t)
	// Wrong content type.
	code, out := postBinary(t, ts.URL+"/v1/ingest/keyed", codec.IngestContentType,
		codec.AppendKeyedIngestFrame(nil, []byte("k"), []float64{1}))
	if code != 415 {
		t.Fatalf("wrong content type status %d: %v", code, out)
	}
	// Corrupt frame after a good one: partial accept is reported.
	body := codec.AppendKeyedIngestFrame(nil, []byte("good"), []float64{1, 2, 3})
	bad := codec.AppendKeyedIngestFrame(nil, []byte("bad"), []float64{4})
	bad[len(bad)-1] ^= 1 // CRC flip
	code, out = postBinary(t, ts.URL+"/v1/ingest/keyed", codec.KeyedIngestContentType, append(body, bad...))
	if code != 400 {
		t.Fatalf("corrupt frame status %d: %v", code, out)
	}
	if msg := out["error"].(string); !strings.Contains(msg, "after 3 values") {
		t.Errorf("error body %q does not report the partial accept", msg)
	}
	// The good frame really landed.
	if code, _ := get(t, ts.URL+"/quantile?key=good&phi=0.5"); code != 200 {
		t.Errorf("good key lost after partial accept: status %d", code)
	}
}

func TestKeyedStoreFullReject(t *testing.T) {
	s, err := New(0.05, 1e-3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetKeyed(KeyedConfig{MaxKeys: 2, Shards: 1, RejectWhenFull: true}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	body := keyedBody(map[string][]float64{
		"a": {1}, "b": {2},
	}, []string{"a", "b"})
	if code, out := postBinary(t, ts.URL+"/v1/ingest/keyed", codec.KeyedIngestContentType, body); code != 200 {
		t.Fatalf("fill status %d: %v", code, out)
	}
	code, out := postBinary(t, ts.URL+"/v1/ingest/keyed", codec.KeyedIngestContentType,
		codec.AppendKeyedIngestFrame(nil, []byte("c"), []float64{3}))
	if code != 429 {
		t.Fatalf("over-limit status %d: %v", code, out)
	}
	if msg := out["error"].(string); !strings.Contains(msg, "group limit") {
		t.Errorf("429 body %q", msg)
	}
	// Existing keys still ingest.
	if code, _ := postBinary(t, ts.URL+"/v1/ingest/keyed", codec.KeyedIngestContentType,
		codec.AppendKeyedIngestFrame(nil, []byte("a"), []float64{9})); code != 200 {
		t.Errorf("existing key refused after limit: status %d", code)
	}
}

func TestKeyedEvictionAndTTL(t *testing.T) {
	clk := struct {
		t time.Time
	}{t: time.Unix(1_700_000_000, 0)}
	s, err := New(0.05, 1e-3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetKeyed(KeyedConfig{
		MaxKeys: 4, Shards: 1, TTL: time.Minute,
		Now: func() time.Time { return clk.t },
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	// 6 distinct keys through a 4-key LRU → 2 evictions.
	for i := 0; i < 6; i++ {
		frame := codec.AppendKeyedIngestFrame(nil, []byte(fmt.Sprintf("k%d", i)), []float64{float64(i)})
		if code, out := postBinary(t, ts.URL+"/v1/ingest/keyed", codec.KeyedIngestContentType, frame); code != 200 {
			t.Fatalf("ingest %d status %d: %v", i, code, out)
		}
	}
	if code, _ := get(t, ts.URL+"/quantile?key=k0&phi=0.5"); code != 404 {
		t.Errorf("LRU-evicted key k0 status %d, want 404", code)
	}
	_, out := get(t, ts.URL+"/stats")
	ks := out["keyed"].(map[string]any)
	if ks["keys"].(float64) != 4 || ks["evicted_lru"].(float64) != 2 {
		t.Fatalf("after LRU churn: keyed block %v", ks)
	}

	// Let everything idle past the TTL; a sweep empties the store.
	clk.t = clk.t.Add(2 * time.Minute)
	if n := s.Keyed().SweepExpired(); n != 4 {
		t.Fatalf("SweepExpired = %d, want 4", n)
	}
	_, out = get(t, ts.URL+"/stats")
	ks = out["keyed"].(map[string]any)
	if ks["keys"].(float64) != 0 || ks["evicted_ttl"].(float64) != 4 {
		t.Fatalf("after TTL sweep: keyed block %v", ks)
	}
}

func TestKeyedMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t)
	body := keyedBody(map[string][]float64{"a": {1}, "b": {2}}, []string{"a", "b"})
	if code, _ := postBinary(t, ts.URL+"/v1/ingest/keyed", codec.KeyedIngestContentType, body); code != 200 {
		t.Fatal("ingest failed")
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"keyed_keys 2",
		"keyed_keys_created_total 2",
		`keyed_evictions_total{reason="lru"} 0`,
		`http_requests_total{endpoint="ingest_keyed"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestKeyedSurfaceOnEngineServer(t *testing.T) {
	s, ts := newEngineServer(t, "kll")
	if err := s.SetKeyed(KeyedConfig{}); err == nil {
		t.Error("SetKeyed on an engine server succeeded")
	}
	code, out := postBinary(t, ts.URL+"/v1/ingest/keyed", codec.KeyedIngestContentType,
		codec.AppendKeyedIngestFrame(nil, []byte("k"), []float64{1}))
	if code != 501 {
		t.Errorf("engine keyed ingest status %d: %v", code, out)
	}
	if code, _ := get(t, ts.URL+"/quantile?key=k"); code != 501 {
		t.Errorf("engine keyed quantile status %d, want 501", code)
	}
	if code, _ := get(t, ts.URL+"/cdf?key=k&v=1"); code != 501 {
		t.Errorf("engine keyed cdf status %d, want 501", code)
	}
}
