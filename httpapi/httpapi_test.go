package httpapi

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	quantile "repro"
)

var update = flag.Bool("update", false, "rewrite golden files instead of comparing")

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(0.02, 1e-3, 4, quantile.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func get(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestAddAndQuantile(t *testing.T) {
	_, ts := newTestServer(t)
	var body strings.Builder
	for i := 1; i <= 50_000; i++ {
		fmt.Fprintln(&body, i)
	}
	code, out := post(t, ts.URL+"/add", body.String())
	if code != http.StatusOK || out["added"].(float64) != 50_000 {
		t.Fatalf("add: %d %v", code, out)
	}
	code, out = get(t, ts.URL+"/quantile?phi=0.5,0.9")
	if code != http.StatusOK {
		t.Fatalf("quantile: %d %v", code, out)
	}
	if med := out["0.5"].(float64); math.Abs(med-25_000) > 1500 {
		t.Errorf("median %v", med)
	}
	if p90 := out["0.9"].(float64); math.Abs(p90-45_000) > 1500 {
		t.Errorf("p90 %v", p90)
	}
}

func TestDefaultPhi(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/add", "1 2 3 4 5")
	code, out := get(t, ts.URL+"/quantile")
	if code != http.StatusOK || out["0.5"].(float64) != 3 {
		t.Errorf("default phi: %d %v", code, out)
	}
}

func TestCDFEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var body strings.Builder
	for i := 1; i <= 10_000; i++ {
		fmt.Fprintln(&body, i)
	}
	post(t, ts.URL+"/add", body.String())
	code, out := get(t, ts.URL+"/cdf?v=2500")
	if code != http.StatusOK {
		t.Fatalf("cdf: %d %v", code, out)
	}
	if c := out["cdf"].(float64); math.Abs(c-0.25) > 0.03 {
		t.Errorf("cdf(2500) = %v", c)
	}
}

func TestHistogramEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var body strings.Builder
	for i := 1; i <= 20_000; i++ {
		fmt.Fprintln(&body, i)
	}
	post(t, ts.URL+"/add", body.String())
	code, out := get(t, ts.URL+"/histogram?buckets=4")
	if code != http.StatusOK {
		t.Fatalf("histogram: %d %v", code, out)
	}
	bounds := out["boundaries"].([]any)
	if len(bounds) != 3 {
		t.Fatalf("boundaries: %v", bounds)
	}
	for i, b := range bounds {
		want := float64((i + 1) * 5000)
		if math.Abs(b.(float64)-want) > 600 {
			t.Errorf("boundary %d = %v, want ~%v", i, b, want)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/add", "1 2 3")
	code, out := get(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if out["count"].(float64) != 3 || out["eps"].(float64) != 0.02 {
		t.Errorf("stats: %v", out)
	}
	if out["shards"].(float64) != 4 {
		t.Errorf("stats shards: %v", out["shards"])
	}
	layout, ok := out["layout"].(map[string]any)
	if !ok {
		t.Fatalf("stats layout missing: %v", out)
	}
	plan, err := quantile.PlanUnknownN(0.02, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if int(layout["b"].(float64)) != plan.B || int(layout["k"].(float64)) != plan.K || int(layout["h"].(float64)) != plan.H {
		t.Errorf("stats layout %v, want b=%d k=%d h=%d", layout, plan.B, plan.K, plan.H)
	}
	uptime, ok := out["uptime_seconds"].(float64)
	if !ok || uptime < 0 {
		t.Errorf("stats uptime_seconds: %v", out["uptime_seconds"])
	}
}

func TestAddBodyTooLarge(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetMaxBodyBytes(64)
	var body strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintln(&body, i)
	}
	code, out := post(t, ts.URL+"/add", body.String())
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413 (%v)", code, out)
	}
	if _, ok := out["error"]; !ok {
		t.Errorf("413 response carries no JSON error: %v", out)
	}
	// Under the limit still works.
	code, out = post(t, ts.URL+"/add", "1 2 3")
	if code != http.StatusOK || out["added"].(float64) != 3 {
		t.Errorf("small body after 413: %d %v", code, out)
	}
}

func TestErrorResponses(t *testing.T) {
	_, ts := newTestServer(t)
	// Query before any data.
	if code, _ := get(t, ts.URL+"/quantile"); code != http.StatusConflict {
		t.Errorf("empty query status %d", code)
	}
	post(t, ts.URL+"/add", "1")
	cases := []struct {
		url  string
		want int
	}{
		{"/quantile?phi=2", http.StatusBadRequest},
		{"/quantile?phi=abc", http.StatusBadRequest},
		{"/cdf?v=xyz", http.StatusBadRequest},
		{"/histogram?buckets=1", http.StatusBadRequest},
		{"/histogram?buckets=9999", http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, _ := get(t, ts.URL+c.url); code != c.want {
			t.Errorf("%s: status %d, want %d", c.url, code, c.want)
		}
	}
	// Bad body.
	if code, _ := post(t, ts.URL+"/add", "1 2 pear"); code != http.StatusBadRequest {
		t.Errorf("bad body status %d", code)
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/add")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /add status %d", resp.StatusCode)
	}
}

// TestConcurrentClients hammers the service from many goroutines (run
// under -race in CI).
func TestConcurrentClients(t *testing.T) {
	srv, ts := newTestServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var body strings.Builder
			for i := 0; i < 2000; i++ {
				fmt.Fprintln(&body, g*2000+i)
			}
			code, _ := post(t, ts.URL+"/add", body.String())
			if code != http.StatusOK {
				t.Errorf("goroutine %d: add status %d", g, code)
			}
			if code, _ := get(t, ts.URL+"/quantile?phi=0.5"); code != http.StatusOK {
				t.Errorf("goroutine %d: query status %d", g, code)
			}
		}(g)
	}
	wg.Wait()
	if srv.Sketch().Count() != 16_000 {
		t.Errorf("final count %d", srv.Sketch().Count())
	}
}

// TestErrorsAreStructuredJSON pins the error contract across the API:
// every failure — oversized body, malformed input, bad parameters, empty
// sketch — responds with Content-Type application/json and a non-empty
// "error" field, never a bare status line or text/plain body.
func TestErrorsAreStructuredJSON(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetMaxBodyBytes(64)

	checkStructured := func(name string, resp *http.Response, wantStatus int) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", name, ct)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Errorf("%s: body is not JSON: %v", name, err)
			return
		}
		msg, ok := out["error"].(string)
		if !ok || msg == "" {
			t.Errorf("%s: no error message in %v", name, out)
		}
	}

	// Empty-sketch query first: a malformed /add below still ingests the
	// values preceding the parse error, so order matters here.
	resp, err := http.Get(ts.URL + "/quantile")
	if err != nil {
		t.Fatal(err)
	}
	checkStructured("empty /quantile", resp, http.StatusConflict)

	// 413 via MaxBytesReader.
	var big strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintln(&big, i)
	}
	resp, err = http.Post(ts.URL+"/add", "text/plain", strings.NewReader(big.String()))
	if err != nil {
		t.Fatal(err)
	}
	checkStructured("oversized /add", resp, http.StatusRequestEntityTooLarge)

	// Malformed body.
	resp, err = http.Post(ts.URL+"/add", "text/plain", strings.NewReader("1 2 pear"))
	if err != nil {
		t.Fatal(err)
	}
	checkStructured("malformed /add", resp, http.StatusBadRequest)

	// Bad parameters.
	gets := []struct {
		name, path string
		status     int
	}{
		{"bad phi", "/quantile?phi=2", http.StatusBadRequest},
		{"bad v", "/cdf?v=xyz", http.StatusBadRequest},
		{"bad buckets", "/histogram?buckets=1", http.StatusBadRequest},
	}
	for _, g := range gets {
		resp, err := http.Get(ts.URL + g.path)
		if err != nil {
			t.Fatal(err)
		}
		checkStructured(g.name, resp, g.status)
	}
}

// TestRejectsNonFiniteQueryParams is the regression test for the NaN
// hole: ParseFloat happily returns NaN/±Inf, and because NaN compares
// false against everything the old `phi <= 0 || phi > 1` range check
// waved it straight into the rank arithmetic (and v=NaN into the CDF
// binary search). All non-finite parameters must be a 400.
func TestRejectsNonFiniteQueryParams(t *testing.T) {
	_, ts := newTestServer(t)
	post(t, ts.URL+"/add", "1 2 3 4 5 6 7 8 9 10")
	// "+Inf" is unusable in a query string (the + decodes to a space),
	// but ParseFloat("Inf") yields +Inf, so the positive case is covered.
	for _, url := range []string{
		"/quantile?phi=NaN",
		"/quantile?phi=Inf",
		"/quantile?phi=-Inf",
		"/quantile?phi=0.5,NaN", // non-finite hidden in a multi-phi list
		"/cdf?v=NaN",
		"/cdf?v=Inf",
		"/cdf?v=-Inf",
	} {
		if code, body := get(t, ts.URL+url); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (body %v), want 400", url, code, body)
		}
	}
	// Finite queries still work after the rejects.
	code, out := get(t, ts.URL+"/quantile?phi=0.5")
	if code != http.StatusOK {
		t.Fatalf("finite quantile status %d", code)
	}
	if v := out["0.5"].(float64); math.IsNaN(v) {
		t.Errorf("median is NaN")
	}
	if code, out := get(t, ts.URL+"/cdf?v=5"); code != http.StatusOK || math.IsNaN(out["cdf"].(float64)) {
		t.Errorf("finite cdf: status %d, out %v", code, out)
	}
}

// TestMetricsGolden pins the full Prometheus exposition of an
// instrumented server after a deterministic traffic pattern. The server's
// clock is substituted so every request observes exactly 1ms of latency,
// which makes the histogram buckets byte-stable.
func TestMetricsGolden(t *testing.T) {
	s, err := New(0.02, 1e-3, 1, quantile.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1_700_000_000, 0)
	ticks := 0
	s.clock = func() time.Time {
		ticks++
		return base.Add(time.Duration(ticks) * time.Millisecond)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var body strings.Builder
	for i := 1; i <= 1000; i++ {
		fmt.Fprintln(&body, i)
	}
	post(t, ts.URL+"/add", body.String())
	get(t, ts.URL+"/quantile?phi=0.5")
	get(t, ts.URL+"/quantile?phi=0.9")
	get(t, ts.URL+"/cdf?v=500")
	get(t, ts.URL+"/histogram?buckets=4")
	get(t, ts.URL+"/stats")
	get(t, ts.URL+"/quantile?phi=NaN") // exercises the error counter

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type %q", ct)
	}
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("metrics exposition drifted from golden file (run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
