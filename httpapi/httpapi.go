// Package httpapi exposes a quantile summary as an HTTP service: a
// lightweight sidecar for dashboards, load generators or anything that
// wants streaming percentiles without linking the library. It wraps a
// goroutine-safe sharded sketch, so concurrent ingest and query requests
// are fine.
//
// Endpoints (JSON responses):
//
//	POST /add        whitespace-separated numbers in the body
//	GET  /quantile   ?phi=0.5,0.95,0.99
//	GET  /cdf        ?v=123.4
//	GET  /histogram  ?buckets=10
//	GET  /stats
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	quantile "repro"
	"repro/internal/ingest"
)

// DefaultMaxBodyBytes caps a POST /add body unless overridden with
// SetMaxBodyBytes: generous for bulk loads, but bounded so a misbehaving
// client cannot stream forever into one request.
const DefaultMaxBodyBytes = 64 << 20

// Server wraps a concurrent sketch behind HTTP endpoints.
type Server struct {
	sketch  *quantile.Concurrent[float64]
	eps     float64
	delta   float64
	maxBody int64
	start   time.Time
	mux     *http.ServeMux
}

// New returns a Server with the given guarantees and shard count
// (0 selects the default).
func New(eps, delta float64, shards int, opts ...quantile.Option) (*Server, error) {
	c, err := quantile.NewConcurrent[float64](eps, delta, shards, opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		sketch: c, eps: eps, delta: delta,
		maxBody: DefaultMaxBodyBytes,
		start:   time.Now(),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /add", s.handleAdd)
	s.mux.HandleFunc("GET /quantile", s.handleQuantile)
	s.mux.HandleFunc("GET /cdf", s.handleCDF)
	s.mux.HandleFunc("GET /histogram", s.handleHistogram)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Sketch returns the underlying concurrent sketch (for in-process use
// alongside the HTTP surface).
func (s *Server) Sketch() *quantile.Concurrent[float64] { return s.sketch }

// SetMaxBodyBytes overrides the POST /add body cap (n <= 0 restores the
// default). Call before serving.
func (s *Server) SetMaxBodyBytes(n int64) {
	if n <= 0 {
		n = DefaultMaxBodyBytes
	}
	s.maxBody = n
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	reader := ingest.Plain(body, ingest.Options{})
	var added uint64
	// Batch parsed values and feed them through the sketch's bulk path —
	// one shard-lock acquisition per batch instead of per value.
	batch := make([]float64, 0, 4096)
	flush := func() {
		s.sketch.AddAll(batch)
		added += uint64(len(batch))
		batch = batch[:0]
	}
	err := reader.Drain(func(v float64) {
		batch = append(batch, v)
		if len(batch) == cap(batch) {
			flush()
		}
	})
	flush() // values parsed before an error are still accepted
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"body exceeds %d bytes (accepted %d values; split the load into smaller requests)", tooBig.Limit, added)
			return
		}
		writeError(w, http.StatusBadRequest, "parsing body after %d values: %v", added, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"added": added, "total": s.sketch.Count()})
}

func (s *Server) handleQuantile(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("phi")
	if raw == "" {
		raw = "0.5"
	}
	var phis []float64
	for _, part := range strings.Split(raw, ",") {
		phi, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || phi <= 0 || phi > 1 {
			writeError(w, http.StatusBadRequest, "bad phi %q", part)
			return
		}
		phis = append(phis, phi)
	}
	vals, err := s.sketch.Quantiles(phis)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	out := make(map[string]float64, len(phis))
	for i, phi := range phis {
		out[strconv.FormatFloat(phi, 'g', -1, 64)] = vals[i]
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCDF(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("v")
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad v %q", raw)
		return
	}
	frac, err := s.sketch.CDF(v)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"v": v, "cdf": frac})
}

func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	buckets := 10
	if raw := r.URL.Query().Get("buckets"); raw != "" {
		b, err := strconv.Atoi(raw)
		if err != nil || b < 2 || b > 1000 {
			writeError(w, http.StatusBadRequest, "bad buckets %q", raw)
			return
		}
		buckets = b
	}
	phis := make([]float64, buckets-1)
	for i := range phis {
		phis[i] = float64(i+1) / float64(buckets)
	}
	bounds, err := s.sketch.Quantiles(phis)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"buckets":    buckets,
		"boundaries": bounds,
		"rows":       s.sketch.Count(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	b, k, h := s.sketch.Layout()
	hits, misses, rebuilds := s.sketch.ViewStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"count":           s.sketch.Count(),
		"memory_elements": s.sketch.MemoryElements(),
		"eps":             s.eps,
		"delta":           s.delta,
		"shards":          s.sketch.Shards(),
		"layout":          map[string]int{"b": b, "k": k, "h": h},
		"view_cache":      map[string]uint64{"hits": hits, "misses": misses, "rebuilds": rebuilds},
		"uptime_seconds":  time.Since(s.start).Seconds(),
	})
}
