// Package httpapi exposes a quantile summary as an HTTP service: a
// lightweight sidecar for dashboards, load generators or anything that
// wants streaming percentiles without linking the library. It wraps a
// goroutine-safe sharded sketch, so concurrent ingest and query requests
// are fine.
//
// Endpoints (JSON responses unless noted):
//
//	POST /add              whitespace-separated numbers in the body
//	POST /v1/ingest        binary float64 slab frames (application/x-quantile-slab)
//	POST /v1/ingest/keyed  keyed slab frames (application/x-quantile-keyed-slab)
//	GET  /quantile         ?phi=0.5,0.95,0.99[&key=tenant]
//	GET  /cdf              ?v=123.4[&key=tenant]
//	GET  /histogram        ?buckets=10
//	GET  /stats
//	GET  /metrics          Prometheus text format
//
// MRL99 servers (New) additionally run a multi-tenant keyed sketch store:
// keyed slab frames route each slab to its key's sketch, and `key=` on
// /quantile and /cdf serves that key's summary from a per-key cached view.
// Memory is bounded by LRU capacity and TTL eviction (SetKeyed); the store
// answers 404 for unknown/evicted keys and 429 when a full store rejects
// new keys. Engine servers (NewEngine) answer 501 on the keyed surface.
//
// Every endpoint is instrumented: request/error counters, latency
// histograms and in-flight gauges per endpoint, plus sketch-level gauges
// (element count, memory footprint, view-cache counters) and keyed-store
// gauges (occupancy, evictions, rejects), all served on GET /metrics from
// the server's obs.Registry.
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	quantile "repro"
	"repro/internal/codec"
	"repro/internal/engine"
	"repro/internal/ingest"
	"repro/internal/keyed"
	"repro/internal/obs"
)

// DefaultMaxBodyBytes caps a POST /add body unless overridden with
// SetMaxBodyBytes: generous for bulk loads, but bounded so a misbehaving
// client cannot stream forever into one request.
const DefaultMaxBodyBytes = 64 << 20

// DefaultMaxKeys is the keyed store's key cap unless overridden with
// SetKeyed: a million tenants, each paying the per-key b·k footprint.
const DefaultMaxKeys = 1 << 20

// KeyedConfig sizes the server's multi-tenant keyed sketch store; zero
// values select defaults (DefaultMaxKeys keys, keyed.DefaultShards stripes,
// no TTL, LRU eviction).
type KeyedConfig struct {
	// MaxKeys bounds resident keys (0 selects DefaultMaxKeys).
	MaxKeys int
	// TTL evicts keys idle longer than this (0 = never).
	TTL time.Duration
	// Shards is the store's stripe count, a power of two (0 selects
	// keyed.DefaultShards).
	Shards int
	// RejectWhenFull answers new keys with 429 instead of evicting the
	// least-recently-used key when the store is full.
	RejectWhenFull bool
	// Seed makes per-key sampling decisions reproducible.
	Seed uint64
	// Now injects the eviction and window-rotation clock (nil = time.Now);
	// tests use a virtual clock.
	Now func() time.Time
	// Window enables per-key time-windowed queries covering this much
	// recent history (0 disables). The span divides into WindowEpochs
	// tumbling epochs; the epoch width rounds up, so actual coverage is
	// ceil(Window/WindowEpochs)·WindowEpochs ≥ Window.
	Window time.Duration
	// WindowEpochs is the per-key ring size E (0 selects
	// DefaultWindowEpochs when Window is set). Per-key memory grows to
	// (1+E)·b·k elements.
	WindowEpochs int
}

// DefaultWindowEpochs is the window ring size when KeyedConfig.Window is
// set without an explicit epoch count: fine enough that a query over the
// full span overshoots by at most 10%, coarse enough that per-key memory
// stays modest.
const DefaultWindowEpochs = 10

// Server wraps a concurrent sketch behind HTTP endpoints.
type Server struct {
	sketch  *quantile.Concurrent[float64] // MRL99 servers (New)
	eng     *engine.Guarded               // engine servers (NewEngine)
	keyed   *keyed.Store[string, float64] // per-key store (MRL99 servers)
	eps     float64
	delta   float64
	maxBody int64
	start   time.Time
	mux     *http.ServeMux
	reg     *obs.Registry
	logger  *slog.Logger

	// clock stamps request latencies; tests substitute a fixed clock so the
	// /metrics exposition is byte-deterministic.
	clock func() time.Time
}

// New returns a Server with the given guarantees and shard count
// (0 selects the default).
func New(eps, delta float64, shards int, opts ...quantile.Option) (*Server, error) {
	c, err := quantile.NewConcurrent[float64](eps, delta, shards, opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		sketch: c, eps: eps, delta: delta,
		maxBody: DefaultMaxBodyBytes,
		start:   time.Now(),
		mux:     http.NewServeMux(),
		reg:     obs.NewRegistry(),
		logger:  obs.Discard(),
		clock:   time.Now,
	}
	s.routes()
	s.reg.CounterFunc("sketch_elements_total", "Stream elements consumed by the sketch.", s.sketch.Count)
	s.reg.GaugeFunc("sketch_memory_elements", "Elements resident in sketch buffers (the paper's space bound).",
		func() float64 { return float64(s.sketch.MemoryElements()) })
	s.reg.CounterFunc("sketch_view_hits_total", "Queries answered from the cached immutable view.",
		func() uint64 { h, _, _ := s.sketch.ViewStats(); return h })
	s.reg.CounterFunc("sketch_view_misses_total", "Queries that found the cached view stale or absent.",
		func() uint64 { _, m, _ := s.sketch.ViewStats(); return m })
	s.reg.CounterFunc("sketch_view_rebuilds_total", "Query-view reconstructions performed.",
		func() uint64 { _, _, r := s.sketch.ViewStats(); return r })
	if err := s.SetKeyed(KeyedConfig{}); err != nil {
		return nil, err
	}
	s.describeKeyed()
	return s, nil
}

// routes wires the shared endpoint table.
func (s *Server) routes() {
	s.mux.Handle("POST /add", s.instrument("add", s.handleAdd))
	s.mux.Handle("POST /v1/ingest", s.instrument("ingest", s.handleIngest))
	s.mux.Handle("POST /v1/ingest/keyed", s.instrument("ingest_keyed", s.handleKeyedIngest))
	s.mux.Handle("GET /quantile", s.instrument("quantile", s.handleQuantile))
	s.mux.Handle("GET /cdf", s.instrument("cdf", s.handleCDF))
	s.mux.Handle("GET /histogram", s.instrument("histogram", s.handleHistogram))
	s.mux.Handle("GET /stats", s.instrument("stats", s.handleStats))
	s.mux.Handle("GET /metrics", s.reg.Handler())
}

// describeKeyed registers the keyed store's metrics. The closures read
// s.keyed on every scrape, so SetKeyed may replace the store afterwards.
func (s *Server) describeKeyed() {
	stats := func() keyed.Stats {
		if s.keyed == nil {
			return keyed.Stats{}
		}
		return s.keyed.Stats()
	}
	s.reg.GaugeFunc("keyed_keys", "Distinct keys resident in the keyed sketch store.",
		func() float64 { return float64(stats().Keys) })
	s.reg.GaugeFunc("keyed_memory_bound_elements", "Worst-case resident element footprint across keys (#keys*b*k, the paper's Group-By memory model).",
		func() float64 {
			if s.keyed == nil {
				return 0
			}
			return float64(s.keyed.MemoryBoundElements())
		})
	s.reg.CounterFunc("keyed_keys_created_total", "Keyed store entries ever created.",
		func() uint64 { return stats().Created })
	s.reg.CounterFunc(`keyed_evictions_total{reason="lru"}`, "Keys evicted by capacity pressure.",
		func() uint64 { return stats().EvictedLRU })
	s.reg.CounterFunc(`keyed_evictions_total{reason="ttl"}`, "Keys evicted by idle expiry.",
		func() uint64 { return stats().EvictedTTL })
	s.reg.CounterFunc("keyed_rejected_total", "Inserts refused because the keyed store was full.",
		func() uint64 { return stats().Rejected })
	s.reg.GaugeFunc("keyed_window_span_seconds", "Maximum windowed-query coverage per key (0 = windows disabled).",
		func() float64 {
			if s.keyed == nil {
				return 0
			}
			return s.keyed.WindowSpan().Seconds()
		})
	s.reg.CounterFunc("keyed_window_rotations_total", "Window epoch slots retired across all keys.",
		func() uint64 { return stats().WindowRotations })
	s.reg.CounterFunc("keyed_window_rebuilds_total", "Windowed merged-view rebuilds across all keys.",
		func() uint64 { return stats().WindowRebuilds })
}

// SetKeyed replaces the server's keyed sketch store with one sized by cfg.
// Call before serving: in-flight keyed requests against the old store are
// not drained, and previously ingested keys do not carry over. Engine
// servers have no keyed store and reject the call.
func (s *Server) SetKeyed(cfg KeyedConfig) error {
	if s.sketch == nil {
		return fmt.Errorf("httpapi: keyed store requires an MRL99 server (engine servers serve 501 on the keyed surface)")
	}
	if cfg.MaxKeys == 0 {
		cfg.MaxKeys = DefaultMaxKeys
	}
	layout, err := keyed.Solve(s.eps, s.delta)
	if err != nil {
		return err
	}
	layout.Seed = cfg.Seed
	full := keyed.EvictLRU
	if cfg.RejectWhenFull {
		full = keyed.Reject
	}
	var width time.Duration
	epochs := 0
	if cfg.Window < 0 {
		return fmt.Errorf("httpapi: negative window %s", cfg.Window)
	}
	if cfg.WindowEpochs < 0 {
		return fmt.Errorf("httpapi: negative window epoch count %d", cfg.WindowEpochs)
	}
	if cfg.Window > 0 {
		epochs = cfg.WindowEpochs
		if epochs == 0 {
			epochs = DefaultWindowEpochs
		}
		// Round the width up so epochs·width covers at least cfg.Window —
		// truncation would silently reject window=<full span> queries.
		width = (cfg.Window + time.Duration(epochs) - 1) / time.Duration(epochs)
	} else if cfg.WindowEpochs > 0 {
		return fmt.Errorf("httpapi: WindowEpochs %d without a Window span", cfg.WindowEpochs)
	}
	store, err := keyed.New[string, float64](keyed.Config{
		Sketch:       layout,
		Shards:       cfg.Shards,
		MaxKeys:      cfg.MaxKeys,
		OnFull:       full,
		TTL:          cfg.TTL,
		Now:          cfg.Now,
		WindowWidth:  width,
		WindowEpochs: epochs,
	})
	if err != nil {
		return err
	}
	s.keyed = store
	return nil
}

// Keyed returns the server's keyed sketch store (for in-process use, e.g. a
// housekeeping loop calling SweepExpired); nil for engine servers.
func (s *Server) Keyed() *keyed.Store[string, float64] { return s.keyed }

// NewEngine wraps an already-guarded sketch engine behind the same HTTP
// surface. The guarded engine may be shared with other in-process users (a
// cluster worker shipping its windows, say); eps/delta are read from it.
// The MRL99 engine also works here, but New keeps the richer sharded
// sketch (per-shard ingest, view-cache counters) for the default stack.
func NewEngine(g *engine.Guarded) (*Server, error) {
	if g == nil {
		return nil, fmt.Errorf("httpapi: nil engine")
	}
	s := &Server{
		eng: g, eps: g.Epsilon(), delta: g.Delta(),
		maxBody: DefaultMaxBodyBytes,
		start:   time.Now(),
		mux:     http.NewServeMux(),
		reg:     obs.NewRegistry(),
		logger:  obs.Discard(),
		clock:   time.Now,
	}
	s.routes()
	s.reg.CounterFunc("sketch_elements_total", "Stream elements consumed by the sketch.", g.Count)
	s.reg.GaugeFunc("sketch_memory_elements", "Elements resident in sketch buffers (the paper's space bound).",
		func() float64 { return float64(g.MemoryElements()) })
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Sketch returns the underlying concurrent sketch (for in-process use
// alongside the HTTP surface); nil for engine servers.
func (s *Server) Sketch() *quantile.Concurrent[float64] { return s.sketch }

// Engine returns the underlying guarded engine; nil for MRL99 servers
// built with New.
func (s *Server) Engine() *engine.Guarded { return s.eng }

// addAll, count, quantiles and cdf dispatch to whichever summary backs
// this server.
func (s *Server) addAll(vs []float64) {
	if s.eng != nil {
		s.eng.AddAll(vs)
		return
	}
	s.sketch.AddAll(vs)
}

func (s *Server) count() uint64 {
	if s.eng != nil {
		return s.eng.Count()
	}
	return s.sketch.Count()
}

func (s *Server) quantiles(phis []float64) ([]float64, error) {
	if s.eng != nil {
		return s.eng.Quantiles(phis)
	}
	return s.sketch.Quantiles(phis)
}

func (s *Server) cdf(v float64) (float64, error) {
	if s.eng != nil {
		out, err := s.eng.CDF([]float64{v})
		if err != nil {
			return 0, err
		}
		return out[0], nil
	}
	return s.sketch.CDF(v)
}

// Registry returns the registry behind GET /metrics. Co-located components
// (a cluster worker sharing this server's sketch, say) can register their
// own metrics on it to share the scrape surface.
func (s *Server) Registry() *obs.Registry { return s.reg }

// SetLogger routes request-level logs (errors, oversized bodies) to l.
// Call before serving; nil restores the discard logger.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.Discard()
	}
	s.logger = l
}

// SetMaxBodyBytes overrides the POST /add body cap (n <= 0 restores the
// default). Call before serving.
func (s *Server) SetMaxBodyBytes(n int64) {
	if n <= 0 {
		n = DefaultMaxBodyBytes
	}
	s.maxBody = n
}

// statusRecorder captures the response status for metrics and logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps an endpoint handler with its per-endpoint metrics:
// request and error counters, an in-flight gauge, and a latency histogram.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	label := func(name string) string { return fmt.Sprintf("%s{endpoint=%q}", name, endpoint) }
	requests := s.reg.Counter(label("http_requests_total"), "HTTP requests handled, by endpoint.")
	errors := s.reg.Counter(label("http_request_errors_total"), "HTTP requests answered with status >= 400, by endpoint.")
	inflight := s.reg.Gauge(label("http_requests_in_flight"), "Requests currently being handled, by endpoint.")
	latency := s.reg.Histogram(label("http_request_seconds"), "Request handling latency in seconds, by endpoint.", nil)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		inflight.Inc()
		defer inflight.Dec()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		begin := s.clock()
		h(rec, r)
		latency.Observe(s.clock().Sub(begin).Seconds())
		if rec.status >= 400 {
			errors.Inc()
			s.logger.Debug("request failed", "endpoint", endpoint, "status", rec.status, "url", r.URL.String())
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// contentTypeOf returns the request's media type, lowercased and stripped
// of parameters ("text/plain; charset=utf-8" → "text/plain").
func contentTypeOf(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.ToLower(strings.TrimSpace(ct))
}

// addScratch is the pooled per-request working set of the text /add path:
// the parse batch and the scanner's token buffer.
type addScratch struct {
	batch []float64
	scan  []byte
}

var addPool = sync.Pool{New: func() any {
	return &addScratch{batch: make([]float64, 0, 4096), scan: make([]byte, 1<<16)}
}}

// ingestPool pools the binary slab decoders (frame scratch + element slice).
var ingestPool = sync.Pool{New: func() any { return new(codec.IngestDecoder) }}

// keyedIngestPool pools the keyed slab decoders (key + frame scratch).
var keyedIngestPool = sync.Pool{New: func() any { return new(codec.KeyedIngestDecoder) }}

func (s *Server) handleAdd(w http.ResponseWriter, r *http.Request) {
	switch ct := contentTypeOf(r); ct {
	case "", "text/plain", "application/x-www-form-urlencoded", "application/octet-stream":
		// Text bodies under their usual labels.
	case codec.IngestContentType:
		writeError(w, http.StatusUnsupportedMediaType,
			"content type %q: binary slab frames go to POST /v1/ingest", ct)
		return
	default:
		writeError(w, http.StatusUnsupportedMediaType,
			"content type %q: POST /add takes whitespace-separated numbers as text", ct)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	scratch := addPool.Get().(*addScratch)
	defer addPool.Put(scratch)
	reader := ingest.Plain(body, ingest.Options{ScanBuf: scratch.scan})
	var added uint64
	// Batch parsed values and feed them through the sketch's bulk path —
	// one shard-lock acquisition per batch instead of per value.
	batch := scratch.batch[:0]
	flush := func() {
		s.addAll(batch)
		added += uint64(len(batch))
		batch = batch[:0]
	}
	err := reader.Drain(func(v float64) {
		batch = append(batch, v)
		if len(batch) == cap(batch) {
			flush()
		}
	})
	flush() // values parsed before an error are still accepted
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"body exceeds %d bytes (accepted %d values; split the load into smaller requests)", tooBig.Limit, added)
			return
		}
		writeError(w, http.StatusBadRequest, "parsing body after %d values: %v", added, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"added": added, "total": s.count()})
}

// handleIngest is the wire-speed binary path: a body of slab frames
// (internal/codec ingest format) decoded with pooled scratch, each frame
// handed to the sketch's bulk path in one AddAll. Frames decoded before an
// error are already ingested and are reported in the error body.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if ct := contentTypeOf(r); ct != codec.IngestContentType {
		writeError(w, http.StatusUnsupportedMediaType,
			"content type %q: POST /v1/ingest takes %s", ct, codec.IngestContentType)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := ingestPool.Get().(*codec.IngestDecoder)
	defer ingestPool.Put(dec)
	dec.Reset(body)
	var added, frames uint64
	for {
		vals, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					"body exceeds %d bytes (accepted %d values in %d frames; split the load into smaller requests)",
					tooBig.Limit, added, frames)
				return
			}
			writeError(w, http.StatusBadRequest, "frame %d (after %d values): %v", frames+1, added, err)
			return
		}
		s.addAll(vals)
		added += uint64(len(vals))
		frames++
	}
	writeJSON(w, http.StatusOK, map[string]uint64{"added": added, "frames": frames, "total": s.count()})
}

// keyedErrStatus maps keyed-store errors to HTTP statuses: a full store in
// Reject mode is the caller's backpressure signal (429), an unknown or
// evicted key is a 404, a windowed query the store cannot satisfy (windows
// disabled, or a duration beyond the configured span) is the caller's
// request to fix (400), and anything else (an empty key's query, an empty
// window) is the usual 409 conflict.
func keyedErrStatus(err error) int {
	switch {
	case errors.Is(err, quantile.ErrGroupLimit):
		return http.StatusTooManyRequests
	case errors.Is(err, quantile.ErrKeyNotFound):
		return http.StatusNotFound
	case errors.Is(err, keyed.ErrWindowDisabled), errors.Is(err, keyed.ErrWindowRange):
		return http.StatusBadRequest
	default:
		return http.StatusConflict
	}
}

// handleKeyedIngest is the multi-tenant wire path: a body of keyed slab
// frames, each routed to its key's sketch through the store's borrowed-key
// bulk path (no string materialization for resident keys). Frames decoded
// before an error are already ingested and are reported in the error body.
func (s *Server) handleKeyedIngest(w http.ResponseWriter, r *http.Request) {
	if s.keyed == nil {
		writeError(w, http.StatusNotImplemented,
			"keyed ingest requires an MRL99 server (engine servers have no keyed store)")
		return
	}
	if ct := contentTypeOf(r); ct != codec.KeyedIngestContentType {
		writeError(w, http.StatusUnsupportedMediaType,
			"content type %q: POST /v1/ingest/keyed takes %s", ct, codec.KeyedIngestContentType)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := keyedIngestPool.Get().(*codec.KeyedIngestDecoder)
	defer keyedIngestPool.Put(dec)
	dec.Reset(body)
	var added, frames uint64
	for {
		key, vals, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					"body exceeds %d bytes (accepted %d values in %d frames; split the load into smaller requests)",
					tooBig.Limit, added, frames)
				return
			}
			writeError(w, http.StatusBadRequest, "frame %d (after %d values): %v", frames+1, added, err)
			return
		}
		if err := keyed.AddAllBytes(s.keyed, key, vals); err != nil {
			writeError(w, keyedErrStatus(err), "frame %d (after %d values in %d frames): %v", frames+1, added, frames, err)
			return
		}
		added += uint64(len(vals))
		frames++
	}
	writeJSON(w, http.StatusOK, map[string]uint64{
		"added": added, "frames": frames, "keys": uint64(s.keyed.Keys()),
	})
}

// windowParam resolves the optional window= parameter in the context of
// its key= sibling: a windowed query needs a key (per-key rings are the
// only windowed state) and a strictly valid positive duration. The second
// return is false when the handler has already written an error response.
func (s *Server) windowParam(w http.ResponseWriter, r *http.Request, key string) (time.Duration, bool) {
	raw := r.URL.Query().Get("window")
	if raw == "" {
		return 0, true
	}
	d, err := parseWindow(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return 0, false
	}
	if key == "" {
		writeError(w, http.StatusBadRequest, "window=%s requires key= (only keyed streams carry window rings)", d)
		return 0, false
	}
	return d, true
}

func (s *Server) handleQuantile(w http.ResponseWriter, r *http.Request) {
	phis, err := parsePhiList(r.URL.Query().Get("phi"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := r.URL.Query().Get("key")
	window, ok := s.windowParam(w, r, key)
	if !ok {
		return
	}
	if key != "" {
		if s.keyed == nil {
			writeError(w, http.StatusNotImplemented,
				"keyed queries require an MRL99 server (engine servers have no keyed store)")
			return
		}
		var vals []float64
		var err error
		if window > 0 {
			vals, err = s.keyed.WindowQuantiles(key, window, phis)
		} else {
			vals, err = s.keyed.Quantiles(key, phis)
		}
		if err != nil {
			writeError(w, keyedErrStatus(err), "%v", err)
			return
		}
		out := make(map[string]any, len(phis)+2)
		out["key"] = key
		if window > 0 {
			out["window"] = window.String()
		}
		for i, phi := range phis {
			out[strconv.FormatFloat(phi, 'g', -1, 64)] = vals[i]
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	vals, err := s.quantiles(phis)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	out := make(map[string]float64, len(phis))
	for i, phi := range phis {
		out[strconv.FormatFloat(phi, 'g', -1, 64)] = vals[i]
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCDF(w http.ResponseWriter, r *http.Request) {
	v, err := parseFiniteFloat("v", r.URL.Query().Get("v"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := r.URL.Query().Get("key")
	window, ok := s.windowParam(w, r, key)
	if !ok {
		return
	}
	if key != "" {
		if s.keyed == nil {
			writeError(w, http.StatusNotImplemented,
				"keyed queries require an MRL99 server (engine servers have no keyed store)")
			return
		}
		var frac float64
		var err error
		if window > 0 {
			frac, err = s.keyed.WindowCDF(key, window, v)
		} else {
			frac, err = s.keyed.CDF(key, v)
		}
		if err != nil {
			writeError(w, keyedErrStatus(err), "%v", err)
			return
		}
		out := map[string]any{"key": key, "v": v, "cdf": frac}
		if window > 0 {
			out["window"] = window.String()
		}
		writeJSON(w, http.StatusOK, out)
		return
	}
	frac, err := s.cdf(v)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"v": v, "cdf": frac})
}

func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	buckets, err := parseBucketCount(r.URL.Query().Get("buckets"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	phis := make([]float64, buckets-1)
	for i := range phis {
		phis[i] = float64(i+1) / float64(buckets)
	}
	bounds, err := s.quantiles(phis)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"buckets":    buckets,
		"boundaries": bounds,
		"rows":       s.count(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if s.eng != nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"engine":          s.eng.EngineName(),
			"count":           s.eng.Count(),
			"memory_elements": s.eng.MemoryElements(),
			"eps":             s.eps,
			"delta":           s.delta,
			"uptime_seconds":  time.Since(s.start).Seconds(),
		})
		return
	}
	b, k, h := s.sketch.Layout()
	hits, misses, rebuilds := s.sketch.ViewStats()
	out := map[string]any{
		"engine":          engine.MRL99,
		"count":           s.sketch.Count(),
		"memory_elements": s.sketch.MemoryElements(),
		"eps":             s.eps,
		"delta":           s.delta,
		"shards":          s.sketch.Shards(),
		"layout":          map[string]int{"b": b, "k": k, "h": h},
		"view_cache": map[string]any{
			"hits": hits, "misses": misses, "rebuilds": rebuilds,
			"rebuild_seconds": s.sketch.ViewRebuildSeconds(),
		},
		"uptime_seconds": time.Since(s.start).Seconds(),
	}
	if s.keyed != nil {
		ks := s.keyed.Stats()
		kout := map[string]any{
			"keys":                  ks.Keys,
			"created":               ks.Created,
			"evicted_lru":           ks.EvictedLRU,
			"evicted_ttl":           ks.EvictedTTL,
			"rejected":              ks.Rejected,
			"total_count":           s.keyed.TotalCount(),
			"memory_bound_elements": s.keyed.MemoryBoundElements(),
			"per_key_bound":         s.keyed.PerKeyMemoryBound(),
		}
		if s.keyed.Windowed() {
			kout["window"] = map[string]any{
				"width_seconds": s.keyed.WindowWidth().Seconds(),
				"epochs":        s.keyed.WindowEpochs(),
				"span_seconds":  s.keyed.WindowSpan().Seconds(),
				"rotations":     ks.WindowRotations,
				"rebuilds":      ks.WindowRebuilds,
			}
		}
		out["keyed"] = kout
	}
	writeJSON(w, http.StatusOK, out)
}
