// Query-parameter validation, unified. Every handler that reads a numeric
// or duration parameter goes through one of these helpers, so the rules —
// whitespace is trimmed before parsing, non-finite floats are rejected by
// name, bounds failures are structured 400s — are identical across
// /quantile, /cdf, /histogram, and the windowed variants. (They drifted
// when each handler parsed inline: /quantile trimmed phi parts but /cdf
// did not trim v, and /histogram leaned on its range check alone.)
package httpapi

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// parsePhiList parses a comma-separated quantile list. Each part is
// trimmed, must parse as a finite float, and must lie in (0, 1]. An empty
// raw string selects the median.
func parsePhiList(raw string) ([]float64, error) {
	if raw == "" {
		raw = "0.5"
	}
	var phis []float64
	for _, part := range strings.Split(raw, ",") {
		phi, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		// ParseFloat accepts "NaN", and NaN compares false against
		// everything, so the range check alone would wave it through into
		// the rank arithmetic; reject the whole non-finite class by name.
		if err != nil || math.IsNaN(phi) || math.IsInf(phi, 0) || phi <= 0 || phi > 1 {
			return nil, fmt.Errorf("bad phi %q", part)
		}
		phis = append(phis, phi)
	}
	return phis, nil
}

// parseFiniteFloat parses a required finite float parameter (e.g. /cdf's
// v=). NaN poisons the view's binary search (every comparison is false);
// infinities are formally orderable but signal a caller bug just the same.
func parseFiniteFloat(name, raw string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("bad %s %q", name, raw)
	}
	return v, nil
}

// parseBucketCount parses /histogram's buckets= with an explicit bound
// check: an empty raw selects the default, anything unparsable, zero,
// negative, below 2, or above maxBuckets is a structured 400.
const maxBuckets = 1000

func parseBucketCount(raw string) (int, error) {
	if raw == "" {
		return 10, nil
	}
	b, err := strconv.Atoi(strings.TrimSpace(raw))
	if err != nil {
		return 0, fmt.Errorf("bad buckets %q", raw)
	}
	if b <= 0 {
		return 0, fmt.Errorf("bad buckets %q: need a positive count", raw)
	}
	if b < 2 || b > maxBuckets {
		return 0, fmt.Errorf("bad buckets %q: need 2..%d", raw, maxBuckets)
	}
	return b, nil
}

// parseWindow parses the window= duration parameter strictly: a trimmed,
// positive Go duration ("30s", "5m"). Range-checking against the store's
// configured span happens in the keyed layer (ErrWindowRange), which the
// handlers also surface as 400.
func parseWindow(raw string) (time.Duration, error) {
	d, err := time.ParseDuration(strings.TrimSpace(raw))
	if err != nil {
		return 0, fmt.Errorf("bad window %q: want a Go duration like 30s or 5m", raw)
	}
	if d <= 0 {
		return 0, fmt.Errorf("bad window %q: need a positive duration", raw)
	}
	return d, nil
}
