package httpapi

import (
	"testing"
	"time"
)

// The unified-param tests: one table per helper, all four helpers sharing
// the same trimming and structured-rejection rules. The " 0.5" / "+Inf" /
// "-3" / "0" quartet from the PR 10 bugfix sweep appears in each table
// where it is meaningful.

func TestParsePhiList(t *testing.T) {
	cases := []struct {
		raw  string
		want []float64 // nil = expect an error
	}{
		{"", []float64{0.5}},
		{"0.5", []float64{0.5}},
		{" 0.5", []float64{0.5}},
		{"0.5 , 0.9", []float64{0.5, 0.9}},
		{"1", []float64{1}},
		{"0", nil},
		{"-3", nil},
		{"+Inf", nil},
		{"-Inf", nil},
		{"NaN", nil},
		{"1.0001", nil},
		{"0.5,,0.9", nil},
		{"abc", nil},
	}
	for _, tc := range cases {
		got, err := parsePhiList(tc.raw)
		if tc.want == nil {
			if err == nil {
				t.Errorf("parsePhiList(%q) accepted: %v", tc.raw, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parsePhiList(%q): %v", tc.raw, err)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parsePhiList(%q) = %v, want %v", tc.raw, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parsePhiList(%q)[%d] = %v, want %v", tc.raw, i, got[i], tc.want[i])
			}
		}
	}
}

func TestParseFiniteFloat(t *testing.T) {
	cases := []struct {
		raw  string
		want float64
		ok   bool
	}{
		{" 0.5", 0.5, true}, // the /cdf trim fix: whitespace now accepted like /quantile
		{"0.5", 0.5, true},
		{"-3", -3, true}, // any finite value is a legal CDF probe
		{"0", 0, true},
		{"1e9 ", 1e9, true},
		{"+Inf", 0, false},
		{"-Inf", 0, false},
		{"NaN", 0, false},
		{"", 0, false},
		{"abc", 0, false},
	}
	for _, tc := range cases {
		got, err := parseFiniteFloat("v", tc.raw)
		if tc.ok != (err == nil) {
			t.Errorf("parseFiniteFloat(%q): err = %v, want ok=%v", tc.raw, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseFiniteFloat(%q) = %v, want %v", tc.raw, got, tc.want)
		}
	}
}

func TestParseBucketCount(t *testing.T) {
	cases := []struct {
		raw  string
		want int
		ok   bool
	}{
		{"", 10, true},
		{"2", 2, true},
		{" 50", 50, true},
		{"1000", 1000, true},
		{"0", 0, false}, // the explicit <=0 structured guard
		{"-3", 0, false},
		{"1", 0, false},
		{"1001", 0, false},
		{"+Inf", 0, false},
		{"3.5", 0, false},
		{"abc", 0, false},
	}
	for _, tc := range cases {
		got, err := parseBucketCount(tc.raw)
		if tc.ok != (err == nil) {
			t.Errorf("parseBucketCount(%q): err = %v, want ok=%v", tc.raw, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseBucketCount(%q) = %d, want %d", tc.raw, got, tc.want)
		}
	}
}

func TestParseWindow(t *testing.T) {
	cases := []struct {
		raw  string
		want time.Duration
		ok   bool
	}{
		{"30s", 30 * time.Second, true},
		{" 5m", 5 * time.Minute, true},
		{"1h30m", 90 * time.Minute, true},
		{"1ns", time.Nanosecond, true},
		{"0", 0, false},
		{"0s", 0, false},
		{"-3s", 0, false},
		{"-3", 0, false},
		{"+Inf", 0, false},
		{"5", 0, false}, // bare numbers are not durations
		{"", 0, false},
		{"5 m", 0, false}, // interior whitespace is not trimmed away
	}
	for _, tc := range cases {
		got, err := parseWindow(tc.raw)
		if tc.ok != (err == nil) {
			t.Errorf("parseWindow(%q): err = %v, want ok=%v", tc.raw, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseWindow(%q) = %v, want %v", tc.raw, got, tc.want)
		}
	}
}

// TestCDFTrimsWhitespace is the endpoint-level regression for the /cdf
// trim inconsistency: " 0.5" was a 400 on /cdf while /quantile trimmed
// the equivalent phi. Pre-fix this test fails with a 400.
func TestCDFTrimsWhitespace(t *testing.T) {
	_, ts := newTestServer(t)
	if code, out := post(t, ts.URL+"/add", "1\n2\n3\n"); code != 200 {
		t.Fatalf("add: %d %v", code, out)
	}
	code, out := get(t, ts.URL+"/cdf?v=%202.5") // "%20" = leading space
	if code != 200 {
		t.Fatalf("/cdf?v=\" 2.5\" status %d: %v (trim must match /quantile)", code, out)
	}
	if frac := out["cdf"].(float64); frac < 0.6 || frac > 0.7 {
		t.Errorf("cdf = %v, want ~2/3", frac)
	}
}

// TestHistogramBucketGuards is the endpoint-level regression for the
// explicit non-positive buckets guard.
func TestHistogramBucketGuards(t *testing.T) {
	_, ts := newTestServer(t)
	if code, out := post(t, ts.URL+"/add", "1\n2\n3\n"); code != 200 {
		t.Fatalf("add: %d %v", code, out)
	}
	for _, raw := range []string{"0", "-3", "1", "1001", "abc"} {
		if code, _ := get(t, ts.URL+"/histogram?buckets="+raw); code != 400 {
			t.Errorf("/histogram?buckets=%s status %d, want 400", raw, code)
		}
	}
	if code, _ := get(t, ts.URL+"/histogram?buckets=4"); code != 200 {
		t.Errorf("/histogram?buckets=4 status %d, want 200", code)
	}
}
