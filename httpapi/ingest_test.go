package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/codec"
	"repro/internal/engine"
)

// postBinary POSTs raw bytes with the given content type and decodes the
// JSON response.
func postBinary(t *testing.T, url, contentType string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func TestIngestBinaryFrames(t *testing.T) {
	_, ts := newTestServer(t)
	vals := make([]float64, 50_000)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	var body []byte
	body = codec.AppendIngestFrame(body, vals[:30_000])
	body = codec.AppendIngestFrame(body, vals[30_000:])

	code, out := postBinary(t, ts.URL+"/v1/ingest", codec.IngestContentType, body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	if out["added"].(float64) != 50_000 || out["frames"].(float64) != 2 || out["total"].(float64) != 50_000 {
		t.Fatalf("response %v", out)
	}

	code, got := get(t, ts.URL+"/quantile?phi=0.5")
	if code != http.StatusOK {
		t.Fatalf("quantile status %d: %v", code, got)
	}
	med := got["0.5"].(float64)
	if med < 24_000 || med > 26_000 {
		t.Fatalf("median %v after uniform 1..50000 ingest", med)
	}
}

func TestIngestEngineServer(t *testing.T) {
	e, err := engine.New(engine.KLL, 0.02, 1e-3, 7)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewEngine(engine.Guard(e))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	vals := make([]float64, 10_000)
	for i := range vals {
		vals[i] = float64(i)
	}
	code, out := postBinary(t, srv.URL+"/v1/ingest", codec.IngestContentType, codec.AppendIngestFrame(nil, vals))
	if code != http.StatusOK || out["added"].(float64) != 10_000 {
		t.Fatalf("status %d: %v", code, out)
	}
}

func TestIngestRejectsWrongContentType(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := postBinary(t, ts.URL+"/v1/ingest", "text/plain", []byte("1 2 3"))
	if code != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d: %v", code, out)
	}
	if msg, ok := out["error"].(string); !ok || !strings.Contains(msg, codec.IngestContentType) {
		t.Fatalf("error body %v should name the expected content type", out)
	}
}

func TestIngestBadFrame(t *testing.T) {
	_, ts := newTestServer(t)
	frame := codec.AppendIngestFrame(nil, []float64{1, 2, 3})
	frame[len(frame)-1] ^= 1 // break the CRC
	code, out := postBinary(t, ts.URL+"/v1/ingest", codec.IngestContentType, frame)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d: %v", code, out)
	}
	if msg := out["error"].(string); !strings.Contains(msg, "checksum") {
		t.Fatalf("error %q should mention the checksum", msg)
	}

	// Partial acceptance: a good frame followed by a truncated one reports
	// the values already ingested.
	body := codec.AppendIngestFrame(nil, []float64{1, 2, 3})
	body = append(body, codec.AppendIngestFrame(nil, []float64{4, 5})[:10]...)
	code, out = postBinary(t, ts.URL+"/v1/ingest", codec.IngestContentType, body)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d: %v", code, out)
	}
	if msg := out["error"].(string); !strings.Contains(msg, "after 3 values") {
		t.Fatalf("error %q should report the 3 accepted values", msg)
	}
}

func TestIngestBodyCap(t *testing.T) {
	s, ts := newTestServer(t)
	s.SetMaxBodyBytes(1024)
	frame := codec.AppendIngestFrame(nil, make([]float64, 1000)) // ~8KB > cap
	code, out := postBinary(t, ts.URL+"/v1/ingest", codec.IngestContentType, frame)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %v", code, out)
	}
}

func TestAddRejectsUnsupportedContentType(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := postBinary(t, ts.URL+"/add", "application/json", []byte(`[1,2,3]`))
	if code != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d: %v", code, out)
	}
	if _, ok := out["error"].(string); !ok {
		t.Fatalf("want structured JSON error body, got %v", out)
	}

	// Slab frames aimed at /add get redirected to the binary endpoint.
	code, out = postBinary(t, ts.URL+"/add", codec.IngestContentType, codec.AppendIngestFrame(nil, []float64{1}))
	if code != http.StatusUnsupportedMediaType {
		t.Fatalf("status %d: %v", code, out)
	}
	if msg := out["error"].(string); !strings.Contains(msg, "/v1/ingest") {
		t.Fatalf("error %q should point at /v1/ingest", msg)
	}

	// The usual text labels still work, parameters and all.
	resp, err := http.Post(ts.URL+"/add", "text/plain; charset=utf-8", strings.NewReader("1 2 3"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("text/plain with params: status %d", resp.StatusCode)
	}
}
