package quantile

import (
	"bytes"
	"cmp"
	"errors"
	"testing"

	"repro/internal/exact"
	"repro/internal/stream"
)

func TestGroupByBasic(t *testing.T) {
	g, err := NewGroupBy[string, float64](0.05, 1e-3, 0, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	regions := []string{"east", "west", "north"}
	data := map[string][]float64{}
	for i, r := range regions {
		data[r] = stream.Collect(stream.Normal(30_000, uint64(i)+5, float64(100*(i+1)), 10))
		for _, v := range data[r] {
			if err := g.Add(r, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	if g.Groups() != 3 {
		t.Errorf("groups = %d", g.Groups())
	}
	if g.TotalCount() != 90_000 {
		t.Errorf("total count %d", g.TotalCount())
	}
	for _, r := range regions {
		if g.Count(r) != 30_000 {
			t.Errorf("group %s count %d", r, g.Count(r))
		}
		med, err := g.Quantile(r, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if e := exact.RankError(data[r], med, 0.5, 0.05); e != 0 {
			t.Errorf("group %s median off by %d ranks", r, e)
		}
	}
}

func TestGroupByUnknownKey(t *testing.T) {
	g, _ := NewGroupBy[int, float64](0.1, 1e-2, 0)
	if _, err := g.Quantile(42, 0.5); err == nil {
		t.Error("unknown group query accepted")
	}
	if _, err := g.Quantiles(42, []float64{0.5}); err == nil {
		t.Error("unknown group batch query accepted")
	}
	if g.Count(42) != 0 {
		t.Error("unknown group count != 0")
	}
}

func TestGroupByLimit(t *testing.T) {
	g, _ := NewGroupBy[int, float64](0.1, 1e-2, 2)
	if err := g.Add(1, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(2, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(3, 3.0); err == nil {
		t.Error("group limit not enforced")
	}
	// Existing groups still accept rows.
	if err := g.Add(1, 4.0); err != nil {
		t.Errorf("existing group rejected: %v", err)
	}
}

func TestGroupByQuantilesAllSorted(t *testing.T) {
	g, _ := NewGroupBy[string, int](0.1, 1e-2, 0, WithSeed(2))
	for i := 0; i < 3000; i++ {
		g.Add("b", i)
		g.Add("a", i*2)
	}
	rows, err := g.QuantilesAll([]float64{0.5}, func(x, y string) int { return cmp.Compare(x, y) })
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Key != "a" || rows[1].Key != "b" {
		t.Fatalf("sorted rows wrong: %+v", rows)
	}
	if rows[0].Count != 3000 || len(rows[0].Values) != 1 {
		t.Errorf("row shape wrong: %+v", rows[0])
	}
	if rows[0].Values[0] < rows[1].Values[0] {
		t.Errorf("group a median (%d) should exceed group b (%d)", rows[0].Values[0], rows[1].Values[0])
	}
}

func TestGroupByMemoryBounds(t *testing.T) {
	g, _ := NewGroupBy[int, float64](0.05, 1e-3, 0, WithSeed(3))
	for k := 0; k < 10; k++ {
		for i := 0; i < 50_000; i++ {
			g.Add(k, float64(i))
		}
	}
	per := g.PerGroupMemoryBound()
	if per <= 0 {
		t.Fatal("per-group bound not positive")
	}
	// Each group may also hold one query-snapshot buffer beyond b*k.
	if g.MemoryElements() > 10*(per+per) {
		t.Errorf("total memory %d far above 10 groups * %d", g.MemoryElements(), per)
	}
}

func TestGroupByBadParams(t *testing.T) {
	if _, err := NewGroupBy[int, float64](0, 0.1, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewGroupBy[int, float64](0.1, 0.1, 0, WithPolicy("zzz")); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestGroupByIndependentGroups(t *testing.T) {
	// Group sketches must not interfere: identical data added to two keys
	// yields identical estimates only if seeds differ... the estimates may
	// differ slightly, but both must be within eps.
	g, _ := NewGroupBy[int, float64](0.05, 1e-3, 0, WithSeed(4))
	data := stream.Collect(stream.Uniform(40_000, 9))
	for _, v := range data {
		g.Add(1, v)
		g.Add(2, v)
	}
	for _, key := range []int{1, 2} {
		m, err := g.Quantile(key, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if e := exact.RankError(data, m, 0.5, 0.05); e != 0 {
			t.Errorf("group %d median off by %d ranks", key, e)
		}
	}
}

func TestGroupByTypedErrors(t *testing.T) {
	g, _ := NewGroupBy[int, float64](0.1, 1e-2, 1)
	if err := g.Add(1, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(2, 2.0); !errors.Is(err, ErrGroupLimit) {
		t.Errorf("over-limit Add err = %v, want errors.Is(ErrGroupLimit)", err)
	}
	if _, err := g.Quantile(42, 0.5); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("unknown group err = %v, want errors.Is(ErrKeyNotFound)", err)
	}
	if _, err := g.CDF(42, 1.0); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("unknown group CDF err = %v, want errors.Is(ErrKeyNotFound)", err)
	}
	if _, err := g.Checkpoint(42, Float64Codec()); !errors.Is(err, ErrKeyNotFound) {
		t.Errorf("unknown group Checkpoint err = %v, want errors.Is(ErrKeyNotFound)", err)
	}
}

// TestGroupByAddAllByteIdentity: for every key, feeding rows through the
// bulk AddAll path yields a checkpoint blob byte-identical to feeding the
// same rows through scalar Add under the same seed — groups are created in
// the same first-seen order, so the derived per-group seeds line up.
func TestGroupByAddAllByteIdentity(t *testing.T) {
	data := map[string][]float64{
		"east":  stream.Collect(stream.Uniform(30_000, 21)),
		"west":  stream.Collect(stream.Uniform(50_000, 22)),
		"north": stream.Collect(stream.Uniform(7_500, 23)),
	}
	order := []string{"east", "west", "north"}

	scalar, err := NewGroupBy[string, float64](0.05, 1e-3, 0, WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	bulk, err := NewGroupBy[string, float64](0.05, 1e-3, 0, WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range order {
		for _, v := range data[key] {
			if err := scalar.Add(key, v); err != nil {
				t.Fatal(err)
			}
		}
		// Chunked bulk feed, crossing fill-buffer boundaries.
		vs := data[key]
		for len(vs) > 0 {
			n := min(1023, len(vs))
			if err := bulk.AddAll(key, vs[:n]); err != nil {
				t.Fatal(err)
			}
			vs = vs[n:]
		}
	}
	for _, key := range order {
		a, err := scalar.Checkpoint(key, Float64Codec())
		if err != nil {
			t.Fatalf("scalar checkpoint(%s): %v", key, err)
		}
		b, err := bulk.Checkpoint(key, Float64Codec())
		if err != nil {
			t.Fatalf("bulk checkpoint(%s): %v", key, err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("group %s: AddAll state differs from Add state", key)
		}
	}
}
