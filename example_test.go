package quantile_test

import (
	"fmt"

	quantile "repro"
)

// The basic workflow: build a sketch for the target guarantees, stream
// values through it, query at any time.
func ExampleNew() {
	s, err := quantile.New[float64](0.01, 1e-4, quantile.WithSeed(1))
	if err != nil {
		panic(err)
	}
	for i := 1; i <= 100_000; i++ {
		s.Add(float64(i))
	}
	median, _ := s.Median()
	p99, _ := s.Quantile(0.99)
	fmt.Printf("n=%d median within 1%%: %v, p99 within 1%%: %v\n",
		s.Count(), median > 49_000 && median < 51_000, p99 > 98_000)
	// Output: n=100000 median within 1%: true, p99 within 1%: true
}

// CDF is the inverse query: the estimated fraction of values at or below a
// threshold.
func ExampleSketch_CDF() {
	s, _ := quantile.New[float64](0.01, 1e-3, quantile.WithSeed(2))
	for i := 1; i <= 50_000; i++ {
		s.Add(float64(i))
	}
	frac, _ := s.CDF(12_500)
	fmt.Printf("~%.0f%% of values are <= 12500\n", 100*frac)
	// Output: ~25% of values are <= 12500
}

// Merge combines sketches built independently (for example, one per
// goroutine or one per data shard) into one queryable summary — the
// paper's parallel algorithm.
func ExampleMerge() {
	var workers []*quantile.Sketch[float64]
	for w := 0; w < 4; w++ {
		s, _ := quantile.New[float64](0.02, 1e-3, quantile.WithSeed(uint64(w)))
		for i := 0; i < 25_000; i++ {
			s.Add(float64(w*25_000 + i)) // disjoint ranges per worker
		}
		workers = append(workers, s)
	}
	merged, _ := quantile.Merge(workers...)
	med, _ := merged.Quantile(0.5)
	fmt.Printf("union of %d elements, median within 2%%: %v\n",
		merged.Count(), med > 48_000 && med < 52_000)
	// Output: union of 100000 elements, median within 2%: true
}

// Extreme quantiles need far less memory than the general algorithm when
// the stream length is declared (paper Section 7).
func ExampleNewExtreme() {
	const n = 200_000
	e, _ := quantile.NewExtreme[float64](0.99, 0.005, 1e-3, n, quantile.WithSeed(3))
	for i := 1; i <= n; i++ {
		e.Add(float64(i))
	}
	v, _ := e.Query()
	fmt.Printf("p99 within 0.5%%: %v, memory under 3000 elements: %v\n",
		v > float64(n)*0.985 && v < float64(n)*0.995, e.MemoryElements() < 3000)
	// Output: p99 within 0.5%: true, memory under 3000 elements: true
}

// Checkpoint/RestoreSketch persist a sketch across process restarts.
func ExampleSketch_Checkpoint() {
	s, _ := quantile.New[float64](0.05, 1e-2, quantile.WithSeed(4))
	for i := 0; i < 10_000; i++ {
		s.Add(float64(i))
	}
	blob, _ := s.Checkpoint(quantile.Float64Codec())
	restored, _ := quantile.RestoreSketch[float64](blob, quantile.Float64Codec())
	a, _ := s.Median()
	b, _ := restored.Median()
	fmt.Printf("restored sketch agrees: %v (blob %v bytes < 64KiB)\n", a == b, len(blob) < 1<<16)
	// Output: restored sketch agrees: true (blob true bytes < 64KiB)
}

// EquiDepth maintains histogram boundaries over a growing table.
func ExampleNewEquiDepth() {
	h, _ := quantile.NewEquiDepth[float64](4, 0.02, 1e-3, quantile.WithSeed(5))
	for i := 1; i <= 40_000; i++ {
		h.Add(float64(i))
	}
	bounds, _ := h.Boundaries()
	ok := true
	for i, b := range bounds {
		want := float64((i + 1) * 10_000)
		if b < want*0.96 || b > want*1.04 {
			ok = false
		}
	}
	fmt.Printf("%d boundaries near the quartiles: %v\n", len(bounds), ok)
	// Output: 3 boundaries near the quartiles: true
}

// Universal answers ANY number of ad-hoc quantile queries under one ε
// guarantee (the paper's Section 4.7 precomputation trick).
func ExampleNewUniversal() {
	u, _ := quantile.NewUniversal[float64](0.05, 1e-2, quantile.WithSeed(7))
	for i := 1; i <= 20_000; i++ {
		u.Add(float64(i))
	}
	ok := true
	for phi := 0.07; phi < 0.95; phi += 0.011 { // 80 arbitrary queries
		v, _ := u.Quantile(phi)
		if v < (phi-0.06)*20_000 || v > (phi+0.06)*20_000 {
			ok = false
		}
	}
	fmt.Printf("grid of %d maintained quantiles answers all queries: %v\n", u.GridSize(), ok)
	// Output: grid of 20 maintained quantiles answers all queries: true
}

// Concurrent is the goroutine-safe variant; queries merge shard snapshots.
func ExampleNewConcurrent() {
	c, _ := quantile.NewConcurrent[float64](0.05, 1e-2, 4, quantile.WithSeed(8))
	for i := 1; i <= 30_000; i++ {
		c.Add(float64(i))
	}
	med, _ := c.Quantile(0.5)
	cdf, _ := c.CDF(7_500)
	fmt.Printf("median within 5%%: %v, CDF(7500) near 0.25: %v\n",
		med > 13_500 && med < 16_500, cdf > 0.2 && cdf < 0.3)
	// Output: median within 5%: true, CDF(7500) near 0.25: true
}

// GroupBy maintains one sketch per key, the Group-By aggregation pattern.
func ExampleNewGroupBy() {
	g, _ := quantile.NewGroupBy[string, float64](0.05, 1e-2, 0, quantile.WithSeed(6))
	for i := 0; i < 10_000; i++ {
		g.Add("small", float64(i%100))
		g.Add("large", float64(i%100)*1000)
	}
	small, _ := g.Quantile("small", 0.5)
	large, _ := g.Quantile("large", 0.5)
	fmt.Printf("groups=%d, medians ordered: %v\n", g.Groups(), small < large)
	// Output: groups=2, medians ordered: true
}
