// Package quantile computes ε-approximate quantiles (order statistics) of
// large data streams in a single pass using very little memory, implementing
// Manku, Rajagopalan & Lindsay, "Random Sampling Techniques for Space
// Efficient Online Computation of Order Statistics of Large Datasets"
// (SIGMOD 1999) and the framework algorithms of its predecessor [MRL98].
//
// The headline type is Sketch: a streaming quantile summary that does NOT
// need to know the stream length in advance, whose memory footprint is
// O(ε⁻¹·log²ε⁻¹ + ε⁻¹·log²log δ⁻¹) elements — independent of the stream
// length — and whose estimates are within rank ε·N of exact with
// probability at least 1−δ, at every prefix of the stream:
//
//	s, _ := quantile.New[float64](0.01, 1e-4)
//	for _, v := range column {
//		s.Add(v)
//	}
//	median, _ := s.Quantile(0.5)
//
// Also provided, mirroring the paper:
//
//   - KnownN: the MRL98 known-length baseline (deterministic collapse tree,
//     optionally fed by fixed-rate uniform sampling).
//   - Extreme / ExtremeUnknownN: the Section 7 estimators for quantiles
//     near 0 or 1, using a fraction of the general algorithm's memory.
//   - Reservoir: the folklore reservoir-sampling baseline (Section 2.2).
//   - EquiDepth: equi-depth histograms and splitters over growing tables.
//   - Merge: the Section 6 parallel/distributed merge of worker sketches.
package quantile

import (
	"cmp"
	"fmt"

	"repro/internal/core"
	"repro/internal/extreme"
	"repro/internal/histogram"
	"repro/internal/mrl98"
	"repro/internal/optimize"
	"repro/internal/parallel"
	"repro/internal/policy"
	"repro/internal/reservoir"
	"repro/internal/schedule"
)

// options collects the knobs shared by the constructors.
type options struct {
	seed       uint64
	policyName string
	b, k, h    int // explicit layout override (all three set together)
	limits     []MemoryLimit
}

// Option customizes a constructor.
type Option func(*options) error

// WithSeed fixes the pseudo-random seed, making the data structure's
// sampling decisions — and therefore its outputs — reproducible.
func WithSeed(seed uint64) Option {
	return func(o *options) error {
		o.seed = seed
		return nil
	}
}

// WithPolicy selects the collapse policy: "mrl" (default, the paper's),
// "munro-paterson" or "ars".
func WithPolicy(name string) Option {
	return func(o *options) error {
		if _, err := policy.ByName(name); err != nil {
			return err
		}
		o.policyName = name
		return nil
	}
}

// WithLayout overrides the solved (b, k, h) layout — b buffers of k
// elements, sampling onset at tree height h. For experiments; the ε/δ
// guarantee is the caller's responsibility under an explicit layout.
func WithLayout(b, k, h int) Option {
	return func(o *options) error {
		if b < 2 || k < 1 || h < 1 {
			return fmt.Errorf("quantile: invalid layout b=%d k=%d h=%d", b, k, h)
		}
		o.b, o.k, o.h = b, k, h
		return nil
	}
}

// MemoryLimit caps the sketch's memory (in elements) once the stream has
// reached N elements. Used with WithMemoryBudget.
type MemoryLimit struct {
	N           uint64
	MaxElements uint64
}

// WithMemoryBudget requests a lazy buffer-allocation schedule (paper
// Section 5) keeping instantaneous memory under the given caps while the
// stream is short. Incompatible with WithLayout.
func WithMemoryBudget(limits ...MemoryLimit) Option {
	return func(o *options) error {
		if len(limits) == 0 {
			return fmt.Errorf("quantile: WithMemoryBudget needs at least one limit")
		}
		o.limits = limits
		return nil
	}
}

func buildOptions(opts []Option) (options, error) {
	var o options
	o.policyName = "mrl"
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return o, err
		}
	}
	return o, nil
}

func (o options) pol() policy.Policy {
	p, _ := policy.ByName(o.policyName)
	return p
}

// Sketch is the unknown-N ε-approximate quantile sketch (the paper's main
// algorithm). Not safe for concurrent use; build one per goroutine and
// combine with Merge, or use Concurrent.
//
// Element ordering follows Go's < operator. float NaN values have no
// defined order (they sort before every other value and can surface as
// estimates); filter NaNs out before Add if the stream may contain them.
type Sketch[T cmp.Ordered] struct {
	inner *core.Sketch[T]
	eps   float64
	delta float64
}

// New returns a Sketch guaranteeing, for any φ and any stream prefix, an
// estimate within rank ε·N of the exact φ-quantile with probability at
// least 1−δ. Parameters (b, k, h) are solved by the Section 4.5 optimizer
// unless overridden.
func New[T cmp.Ordered](eps, delta float64, opts ...Option) (*Sketch[T], error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{Policy: o.pol(), Seed: o.seed}
	switch {
	case o.limits != nil && o.b != 0:
		return nil, fmt.Errorf("quantile: WithMemoryBudget and WithLayout are mutually exclusive")
	case o.limits != nil:
		pts := make([]schedule.Point, len(o.limits))
		for i, l := range o.limits {
			pts[i] = schedule.Point{N: l.N, MaxMemory: l.MaxElements}
		}
		plan, err := schedule.Find(eps, delta, pts, 0)
		if err != nil {
			return nil, err
		}
		cfg.B, cfg.K, cfg.H, cfg.Schedule = plan.B, plan.K, plan.H, plan.Thresholds
	case o.b != 0:
		cfg.B, cfg.K, cfg.H = o.b, o.k, o.h
	default:
		p, err := optimize.UnknownN(eps, delta)
		if err != nil {
			return nil, err
		}
		cfg.B, cfg.K, cfg.H = p.B, p.K, p.H
	}
	inner, err := core.NewSketch[T](cfg)
	if err != nil {
		return nil, err
	}
	return &Sketch[T]{inner: inner, eps: eps, delta: delta}, nil
}

// Add feeds one element.
func (s *Sketch[T]) Add(v T) { s.inner.Add(v) }

// AddAll feeds a slice of elements.
func (s *Sketch[T]) AddAll(vs []T) { s.inner.AddAll(vs) }

// Quantile returns the current estimate of the φ-quantile, φ ∈ (0, 1].
// It may be called at any time and does not disturb the sketch.
func (s *Sketch[T]) Quantile(phi float64) (T, error) { return s.inner.QueryOne(phi) }

// Quantiles returns estimates for several quantiles in request order.
func (s *Sketch[T]) Quantiles(phis []float64) ([]T, error) { return s.inner.Query(phis) }

// Median is shorthand for Quantile(0.5).
func (s *Sketch[T]) Median() (T, error) { return s.inner.QueryOne(0.5) }

// CDF estimates the fraction of stream elements ≤ v (the inverse of
// Quantile), with the same ε rank-error guarantee. Useful for selectivity
// estimation: the fraction of rows in (lo, hi] is CDF(hi) − CDF(lo).
func (s *Sketch[T]) CDF(v T) (float64, error) { return s.inner.CDF(v) }

// Count returns the number of elements consumed.
func (s *Sketch[T]) Count() uint64 { return s.inner.Count() }

// MemoryElements returns the current memory footprint in element slots.
func (s *Sketch[T]) MemoryElements() int { return s.inner.MemoryElements() }

// Epsilon returns the configured rank-error bound.
func (s *Sketch[T]) Epsilon() float64 { return s.eps }

// Delta returns the configured failure probability.
func (s *Sketch[T]) Delta() float64 { return s.delta }

// Reset clears the sketch for reuse, retaining allocated memory.
func (s *Sketch[T]) Reset() { s.inner.Reset() }

// Version returns a monotonic counter bumped by every mutation. Callers
// caching state derived from the sketch (materialized views, serialized
// snapshots) can skip refreshing while the version is unchanged.
func (s *Sketch[T]) Version() uint64 { return s.inner.Version() }

// Stats exposes the sketch's internal counters (tree height, sampling
// rate, collapse counts) for instrumentation and experiments.
func (s *Sketch[T]) Stats() core.Stats { return s.inner.Stats() }

// KnownN is the MRL98 known-length sketch: cheaper than Sketch when the
// stream length is declared in advance, but its guarantee is void if the
// stream overruns the declaration.
type KnownN[T cmp.Ordered] struct {
	inner *mrl98.Sketch[T]
}

// NewKnownN returns a known-N sketch sized for exactly n elements.
func NewKnownN[T cmp.Ordered](n uint64, eps, delta float64, opts ...Option) (*KnownN[T], error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	var cfg mrl98.Config
	if o.b != 0 {
		cfg = mrl98.Config{B: o.b, K: o.k, Rate: 1, DeclaredN: n}
	} else {
		cfg, err = mrl98.Plan(eps, delta, n)
		if err != nil {
			return nil, err
		}
	}
	cfg.Policy = o.pol()
	cfg.Seed = o.seed
	inner, err := mrl98.New[T](cfg)
	if err != nil {
		return nil, err
	}
	return &KnownN[T]{inner: inner}, nil
}

// Add feeds one element.
func (s *KnownN[T]) Add(v T) { s.inner.Add(v) }

// AddAll feeds a slice of elements.
func (s *KnownN[T]) AddAll(vs []T) { s.inner.AddAll(vs) }

// Quantile returns the current estimate of the φ-quantile.
func (s *KnownN[T]) Quantile(phi float64) (T, error) { return s.inner.QueryOne(phi) }

// Quantiles returns estimates for several quantiles in request order.
func (s *KnownN[T]) Quantiles(phis []float64) ([]T, error) { return s.inner.Query(phis) }

// Count returns the number of elements consumed.
func (s *KnownN[T]) Count() uint64 { return s.inner.Count() }

// Overflowed reports whether the stream exceeded the declared length,
// voiding the guarantee.
func (s *KnownN[T]) Overflowed() bool { return s.inner.Overflowed() }

// MemoryElements returns the memory footprint in element slots.
func (s *KnownN[T]) MemoryElements() int { return s.inner.MemoryElements() }

// Extreme is the Section 7 estimator for a single extreme quantile of a
// stream of declared length, using only k = ⌈φ·s⌉ elements of memory.
type Extreme[T cmp.Ordered] = extreme.Estimator[T]

// NewExtreme returns the known-N extreme-quantile estimator for the
// φ-quantile of a stream of n elements.
func NewExtreme[T cmp.Ordered](phi, eps, delta float64, n uint64, opts ...Option) (*Extreme[T], error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return extreme.NewEstimator[T](phi, eps, delta, n, o.seed)
}

// ExtremeUnknownN is the unknown-length extreme-quantile estimator
// (reservoir-backed, memory s = k/φ — still far below the general
// reservoir for small tails).
type ExtremeUnknownN[T cmp.Ordered] = extreme.UnknownN[T]

// NewExtremeUnknownN returns the unknown-N extreme estimator.
func NewExtremeUnknownN[T cmp.Ordered](phi, eps, delta float64, opts ...Option) (*ExtremeUnknownN[T], error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return extreme.NewUnknownN[T](phi, eps, delta, o.seed)
}

// Reservoir is the folklore baseline: a uniform sample of
// ln(2/δ)/(2ε²) elements whose quantiles estimate the stream's.
type Reservoir[T cmp.Ordered] = reservoir.Quantile[T]

// NewReservoir returns the reservoir-sampling baseline estimator.
func NewReservoir[T cmp.Ordered](eps, delta float64, opts ...Option) (*Reservoir[T], error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return reservoir.NewQuantile[T](eps, delta, o.seed)
}

// EquiDepth maintains an approximate equi-depth histogram over a stream of
// unknown length.
type EquiDepth[T cmp.Ordered] = histogram.EquiDepth[T]

// NewEquiDepth returns a p-bucket equi-depth histogram whose boundaries are
// all simultaneously ε-approximate with probability ≥ 1−δ.
func NewEquiDepth[T cmp.Ordered](p int, eps, delta float64, opts ...Option) (*EquiDepth[T], error) {
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return histogram.New[T](p, eps, delta, o.seed)
}

// Merged answers quantile queries over the union of several workers'
// streams (the Section 6 coordinator).
type Merged[T cmp.Ordered] struct {
	coord *parallel.Coordinator[T]
}

// Merge combines worker sketches into a single queryable summary. The
// workers must share a buffer size (guaranteed when they were built with
// the same ε and δ). Each sketch is consumed by the merge.
func Merge[T cmp.Ordered](sketches ...*Sketch[T]) (*Merged[T], error) {
	if len(sketches) == 0 {
		return nil, fmt.Errorf("quantile: Merge needs at least one sketch")
	}
	k := sketches[0].inner.Config().K
	coord, err := parallel.NewCoordinator[T](k, sketches[0].inner.Config().B, 0x5eed)
	if err != nil {
		return nil, err
	}
	for _, s := range sketches {
		if err := coord.Receive(parallel.Ship(s.inner)); err != nil {
			return nil, err
		}
	}
	return &Merged[T]{coord: coord}, nil
}

// Quantile returns the estimate of the φ-quantile over the merged streams.
func (m *Merged[T]) Quantile(phi float64) (T, error) { return m.coord.QueryOne(phi) }

// Quantiles returns estimates for several quantiles in request order.
func (m *Merged[T]) Quantiles(phis []float64) ([]T, error) { return m.coord.Query(phis) }

// CDF estimates the fraction of merged stream elements ≤ v.
func (m *Merged[T]) CDF(v T) (float64, error) { return m.coord.CDF(v) }

// Count returns the aggregate element count.
func (m *Merged[T]) Count() uint64 { return m.coord.Count() }

// Plan reports the solved memory plan for the given guarantees without
// building a sketch — b buffers of k elements, onset height h, and the
// total footprint in elements.
type Plan struct {
	B, K, H int
	Memory  uint64
}

// PlanUnknownN returns the unknown-N memory plan for (ε, δ).
func PlanUnknownN(eps, delta float64) (Plan, error) {
	p, err := optimize.UnknownN(eps, delta)
	if err != nil {
		return Plan{}, err
	}
	return Plan{B: p.B, K: p.K, H: p.H, Memory: p.Memory}, nil
}

// PlanKnownN returns the known-N memory plan for (ε, δ) and stream length n.
func PlanKnownN(eps, delta float64, n uint64) (Plan, error) {
	p, err := optimize.KnownN(eps, delta, n)
	if err != nil {
		return Plan{}, err
	}
	return Plan{B: p.B, K: p.K, H: p.H, Memory: p.Memory}, nil
}
