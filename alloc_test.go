package quantile

import (
	"testing"

	"repro/internal/stream"
)

// TestBulkIngestSteadyStateAllocs pins the whole-sketch ingest budget:
// with the collapse-tree and fill scratch pooled, re-ingesting a stream
// into a reset sketch allocates only what Reset itself needs (a reseeded
// RNG) — no per-block or per-collapse garbage.
func TestBulkIngestSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("streams 256Ki elements per run")
	}
	data := stream.Collect(stream.Uniform(1<<18, 0xfeed))
	s, err := New[float64](0.01, 1e-3, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	s.AddAll(data) // warm the pools through the first collapses
	allocs := testing.AllocsPerRun(3, func() {
		s.Reset()
		s.AddAll(data)
	})
	if allocs > 4 {
		t.Errorf("steady-state bulk ingest allocates %.0f objects per run, want <= 4 (Reset's reseed only)", allocs)
	}
}
